package radio

import (
	"fmt"
	"math"
	"testing"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// benchDense measures the PHY hot path at scale: n radios spread across
// the 11-channel band on a large floor, with bursts of short overlapping
// frames. The same workload runs in indexed mode (per-channel partition +
// spatial cutoff) and naive full-scan mode, so the two benchmark families
// are directly comparable.
func benchDense(b *testing.B, n int, channels []int, opts ...MediumOption) {
	b.Helper()
	k := sim.New(1)
	side := 1000.0
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, side, side)))
	m := NewMedium(k, e, opts...)
	cols := 32
	var radios []*Radio
	for i := 0; i < n; i++ {
		pos := geo.Pt(float64(i%cols)*(side/float64(cols)), float64(i/cols)*(side/float64(cols)))
		r := m.NewRadio(fmt.Sprintf("r%d", i), pos, channels[i%len(channels)], 15)
		r.OnReceive = func(Receipt) {}
		radios = append(radios, r)
	}
	const burst = 64
	round := func(i int) {
		for j := 0; j < burst; j++ {
			src := radios[(i*burst+j*17)%n]
			// Stagger starts inside one airtime so transmissions overlap
			// and the interference ledger is exercised.
			k.Schedule(sim.Time(j)*50*sim.Microsecond, "bench.tx", func() {
				if _, err := m.Transmit(src, 2000, Rates[0], nil); err != nil {
					b.Fatal(err)
				}
			})
		}
		k.Run()
	}
	// Warm the candidate caches, event/ledger pools, and gain caches so
	// the measurement (and especially allocs/op) reflects steady state
	// rather than front-loaded growth — the regression gate compares
	// allocs/op across runs with different iteration counts.
	for _, r := range radios {
		m.candidatesFor(r)
		r.gainTo = make([]pairGain, m.nextID+1)
	}
	for i := 0; i < 3; i++ {
		round(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round(i)
	}
}

var (
	denseIndexed = []MediumOption{WithRxCutoffDBm(-100), WithGridCellM(50)}
	// allChannels crowds every 802.11b channel; orthogonal uses the three
	// non-overlapping ones, so the per-channel partition can skip 2/3 of
	// the band.
	allChannels = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	orthogonal  = []int{1, 6, 11}
)

func BenchmarkMediumDense500Indexed(b *testing.B)  { benchDense(b, 500, allChannels, denseIndexed...) }
func BenchmarkMediumDense500FullScan(b *testing.B) { benchDense(b, 500, allChannels, WithFullScan()) }

func BenchmarkMediumDense1000Indexed(b *testing.B) { benchDense(b, 1000, allChannels, denseIndexed...) }
func BenchmarkMediumDense1000FullScan(b *testing.B) {
	benchDense(b, 1000, allChannels, WithFullScan())
}

// The ChannelOnly pair isolates the per-channel partition with the cutoff
// disabled (bit-exact physics) on an orthogonal channel plan.
func BenchmarkMediumDense500ChannelOnly(b *testing.B) { benchDense(b, 500, orthogonal) }
func BenchmarkMediumDense500ChannelOnlyFullScan(b *testing.B) {
	benchDense(b, 500, orthogonal, WithFullScan())
}

// benchDenseMobile measures the PHY hot path while the whole world
// moves: every radio takes one 0.28 m step per burst, interleaved with
// the transmissions the way mobility ticks interleave with traffic in a
// live scenario. Steps mostly stay inside one default-size grid cell (a few
// percent cross a boundary each burst), which is exactly the shape the
// global-generation wipe degenerates on: each move batch invalidates
// every candidate cache, so nearly every candidatesFor — delivery,
// interference ledger, energy sums — pays a rebuild. The Cell/Global
// pairs run identical workloads (identical physics and receipts) and
// differ only in invalidation granularity; WithGlobalInvalidation is
// the wipe-the-world reference arm.
func benchDenseMobile(b *testing.B, n int, opts ...MediumOption) {
	b.Helper()
	k := sim.New(1)
	// Constant density: the arena grows with the fleet, so the 500- and
	// 1000-radio runs stress invalidation at the same neighbourhood size.
	side := 2500.0 * math.Sqrt(float64(n)/500.0)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, side, side)))
	m := NewMedium(k, e, opts...)
	cols := 32
	radios := make([]*Radio, n)
	headings := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pos := geo.Pt(float64(i%cols)*(side/float64(cols)), float64(i/cols)*(side/float64(cols)))
		// 0 dBm against the -100 dBm cutoff hears out to ~100 m: local
		// neighbourhoods, so the spatial index has real work to do.
		r := m.NewRadio(fmt.Sprintf("r%d", i), pos, allChannels[i%len(allChannels)], 0)
		r.OnReceive = func(Receipt) {}
		radios[i] = r
		a := 2 * math.Pi * float64(i) / float64(n)
		headings[i] = geo.Pt(0.28*math.Cos(a), 0.28*math.Sin(a))
	}
	step := func(i int) {
		r := radios[i]
		r.SetPos(geo.Pt(
			math.Mod(r.Pos.X+headings[i].X+side, side),
			math.Mod(r.Pos.Y+headings[i].Y+side, side),
		))
	}
	const burst = 64
	round := func(i int) {
		for j := 0; j < burst; j++ {
			src := radios[(i*burst+j*17)%n]
			lo, hi := j*n/burst, (j+1)*n/burst
			k.Schedule(sim.Time(j)*50*sim.Microsecond, "bench.moveTx", func() {
				for idx := lo; idx < hi; idx++ {
					step(idx)
				}
				if _, err := m.Transmit(src, 2000, Rates[0], nil); err != nil {
					b.Fatal(err)
				}
			})
		}
		k.Run()
	}
	// Steady-state warmup, as in benchDense; under mobility the caches
	// keep churning, but pool and cache growth is front-loaded.
	for _, r := range radios {
		m.candidatesFor(r)
		r.gainTo = make([]pairGain, m.nextID+1)
	}
	for i := 0; i < 3; i++ {
		round(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round(i)
	}
}

var denseMobileGlobal = []MediumOption{
	WithRxCutoffDBm(-100), WithGlobalInvalidation(),
}

func BenchmarkMediumDenseMobile500Cell(b *testing.B) {
	benchDenseMobile(b, 500, WithRxCutoffDBm(-100))
}
func BenchmarkMediumDenseMobile500Global(b *testing.B) {
	benchDenseMobile(b, 500, denseMobileGlobal...)
}

func BenchmarkMediumDenseMobile1000Cell(b *testing.B) {
	benchDenseMobile(b, 1000, WithRxCutoffDBm(-100))
}
func BenchmarkMediumDenseMobile1000Global(b *testing.B) {
	benchDenseMobile(b, 1000, denseMobileGlobal...)
}
