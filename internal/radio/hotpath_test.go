package radio

import (
	"math"
	"testing"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// TestOutOfOrderCompletionOverlapping covers the Seq-indexed removal in
// finish: three transmissions overlap in the air but complete in a
// different order than they started (later, shorter frames land first),
// so each completion removes from the middle or tail of the active set,
// never just the head.
func TestOutOfOrderCompletionOverlapping(t *testing.T) {
	k, m := newMedium(1)
	// Three senders far apart on orthogonal channels so every frame
	// decodes cleanly at its nearby receiver regardless of the others.
	pairs := []struct {
		ch   int
		x    float64
		bits int
	}{
		{1, 0, 24000}, // longest: starts first, finishes last
		{6, 40, 8000}, // finishes second
		{11, 80, 800}, // shortest: starts last, finishes first
	}
	var order []int
	for i, p := range pairs {
		i := i
		src := m.NewRadio("src", geo.Pt(p.x, 0), p.ch, 15)
		dst := m.NewRadio("dst", geo.Pt(p.x+3, 0), p.ch, 15)
		dst.OnReceive = func(r Receipt) {
			if !r.OK {
				t.Errorf("pair %d frame lost: SINR=%v", i, r.SINRdB)
			}
			order = append(order, i)
		}
		bits := p.bits
		k.Schedule(sim.Time(i)*10*sim.Microsecond, "tx", func() {
			if _, err := m.Transmit(src, bits, Rates[0], nil); err != nil {
				t.Error(err)
			}
		})
	}
	// All three must be in the air simultaneously at some point.
	overlapped := false
	k.Schedule(100*sim.Microsecond, "probe", func() {
		overlapped = m.ActiveTransmissions() == 3
	})
	k.Run()
	if !overlapped {
		t.Fatal("transmissions did not overlap; the test no longer exercises out-of-order removal")
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("completion order = %v, want [2 1 0] (reverse of start order)", order)
	}
	if m.ActiveTransmissions() != 0 {
		t.Fatalf("active = %d after drain, want 0", m.ActiveTransmissions())
	}
	if m.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", m.Delivered)
	}
}

// TestLedgerRecycledAcrossTransmissions: sequential transmissions reuse
// pooled interference ledgers, and a recycled ledger must not leak the
// previous tenancy's interference into a new transmission's SINR.
func TestLedgerRecycledAcrossTransmissions(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(5, 0), 6, 15)
	jam := m.NewRadio("jam", geo.Pt(6, 0), 6, 15)
	var sinrs []float64
	b.OnReceive = func(r Receipt) {
		if r.Tx.Src == a {
			sinrs = append(sinrs, r.SINRdB)
		}
	}
	// Round 1: a's frame suffers co-channel interference from jam.
	if _, err := m.Transmit(a, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit(jam, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Round 2: a alone — its (recycled) ledger must read zero.
	if _, err := m.Transmit(a, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(sinrs) != 2 {
		t.Fatalf("receipts at b = %d, want 2", len(sinrs))
	}
	if !(sinrs[1] > sinrs[0]+20) {
		t.Fatalf("clean retransmission SINR %.1f dB not far above jammed %.1f dB; ledger state leaked across recycling", sinrs[1], sinrs[0])
	}
	clean := m.SNRAtDBm(a, b)
	if math.Abs(sinrs[1]-clean) > 1e-9 {
		t.Fatalf("interference-free SINR %.12f != SNR %.12f", sinrs[1], clean)
	}
}

// TestGainCacheInvalidatesOnMoveAndPower: cached link gains must follow
// SetPos on either endpoint and direct TxPowerDBm changes.
func TestGainCacheInvalidatesOnMoveAndPower(t *testing.T) {
	_, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(10, 0), 6, 15)
	near := m.MeasureRSSI(a, b)
	if again := m.MeasureRSSI(a, b); again != near {
		t.Fatalf("repeated measurement differs: %v vs %v", again, near)
	}
	b.SetPos(geo.Pt(40, 0))
	far := m.MeasureRSSI(a, b)
	if far >= near {
		t.Fatalf("RSSI did not drop after receiver moved away: near=%v far=%v", near, far)
	}
	a.SetPos(geo.Pt(-30, 0))
	farther := m.MeasureRSSI(a, b)
	if farther >= far {
		t.Fatalf("RSSI did not drop after sender moved away: far=%v farther=%v", far, farther)
	}
	a.TxPowerDBm += 10
	boosted := m.MeasureRSSI(a, b)
	if math.Abs(boosted-(farther+10)) > 1e-9 {
		t.Fatalf("+10 dB transmit power moved RSSI from %v to %v, want exactly +10", farther, boosted)
	}
}

// TestMediumDenseAllocsBudget is the allocation regression guard for
// the BenchmarkMediumDense* workload shape: after warmup, a burst of 64
// overlapping transmissions across a dense indexed medium must stay
// within a small allocation budget (approximately one Transmission
// record per frame — no per-event, per-ledger, or per-pair-math
// allocations). The budget is ~3x the measured steady state (~165) to
// absorb incidental growth, while the pre-pooling code (~1850) fails it
// by an order of magnitude.
func TestMediumDenseAllocsBudget(t *testing.T) {
	k := sim.New(1)
	side := 1000.0
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, side, side)))
	m := NewMedium(k, e, WithRxCutoffDBm(-100), WithGridCellM(50))
	cols := 32
	var radios []*Radio
	channels := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	for i := 0; i < 500; i++ {
		pos := geo.Pt(float64(i%cols)*(side/float64(cols)), float64(i/cols)*(side/float64(cols)))
		r := m.NewRadio("r", pos, channels[i%len(channels)], 15)
		r.OnReceive = func(Receipt) {}
		radios = append(radios, r)
	}
	iter := 0
	burst := func() {
		for j := 0; j < 64; j++ {
			src := radios[(iter*64+j*17)%len(radios)]
			k.Schedule(sim.Time(j)*50*sim.Microsecond, "bench.tx", func() {
				if _, err := m.Transmit(src, 2000, Rates[0], nil); err != nil {
					t.Fatal(err)
				}
			})
		}
		k.Run()
		iter++
	}
	for _, r := range radios {
		m.candidatesFor(r) // build every sender's candidate cache once
	}
	for i := 0; i < 3; i++ {
		burst() // warm the ledger pool, event pool, and gain caches
	}
	allocs := testing.AllocsPerRun(5, burst)
	const budget = 520
	t.Logf("dense burst: %.0f allocs/run (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("dense burst allocated %.0f/run, budget %d — the PHY hot path has regressed", allocs, budget)
	}
}
