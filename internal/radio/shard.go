// Space-parallel ("sharded") execution of the medium's per-event
// fan-out.
//
// # The conservative-lookahead contract
//
// The arena is partitioned once into rectangular regions
// (geo.RegionMap) whose tile edge is at least the maximum hearing range
// env.MaxRangeForCutoff(maxTxPower, rxCutoff). With that sizing, a
// receive cutoff bounds cross-region influence: an emission inside one
// region is below the cutoff everywhere beyond its own tile and the
// one-ring of neighbours, so region-local state (members, border sets,
// ledger pools, the kernel lane carrying the region's txEnd events)
// captures everything a region's worker needs, and radios whose
// hearing circle crosses their tile boundary form the region's
// explicit border set. Without a cutoff the hearing radius is
// unbounded: every radio is border, the arena collapses to a single
// region, and SetShards falls back to sequential execution (documented,
// never an error).
//
// # Why digests are bit-identical
//
// The parallel mode splits every delivery and interference fan-out into
// two halves:
//
//   - evaluate (parallel): workers compute, for the receivers of the
//     regions they own, the exact values the sequential code would
//     compute — per-pair link gains, SINR, decode outcomes, per-receiver
//     interference accumulation. Each receiver is owned by exactly one
//     worker (its region, modulo the worker count), every shared-growth
//     site (gain-cache rows, ledger cells, the outcome buffer) is
//     pre-sized by the coordinator before the phase, and per-cell
//     floating-point accumulation order is the sequential order (the
//     in-flight transmission list is walked in ascending Seq by the one
//     worker that owns the cell's receiver).
//   - commit (sequential): the coordinator walks receivers in ascending
//     radio-ID order — the exact order of the sequential kernel — and
//     fires receipts, bumps Delivered/Lost, and consumes RNG/trace
//     exactly as the sequential code path does. Cross-region deliveries
//     therefore merge in ascending radio-ID/Seq order at the
//     phase barrier by construction.
//
// A callback fired during a commit can mutate the world (move a radio,
// retune it, detach it); the coordinator detects that through the
// medium's physGen mutation counter and recomputes the remaining
// receivers inline — sequential semantics, always. Shadow fading
// (env.ShadowSigmaDB > 0) draws from the kernel RNG lazily inside the
// gain computation, which cannot run concurrently without reordering
// the stream, so those worlds always evaluate sequentially too.
//
// # Checkpoint state
//
// Shard configuration and region/worker layout are deliberately absent
// from Medium.ExportState: sharding is a pure execution strategy, like
// the kernel's heap shape or the free-list order, and a sharded world
// must export byte-identical state to the sequential world it mirrors
// (the PR 6 restore proof depends on it). ShardLayout exposes the
// layout for diagnostics and tests instead.
package radio

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"aroma/internal/geo"
)

// shardMinFanout is the smallest receiver fan-out worth a phase
// barrier: below it the dispatch overhead dominates the parallel win
// and the coordinator just runs the sequential loop.
const shardMinFanout = 16

// WithShards enables the conservative sharded execution mode with n
// workers at construction time. n < 2, an arena too small to hold two
// regions at the cutoff-derived minimum tile edge, or a disabled
// receive cutoff all fall back to sequential execution — documented
// behavior, never a mid-run error. Equivalent to calling SetShards(n)
// on the built medium.
func WithShards(n int) MediumOption {
	return func(m *Medium) { m.pendingShards = n }
}

// rxOutcome is one receiver's precomputed delivery outcome from the
// parallel evaluate phase. eval is false when the sequential code would
// have skipped the receiver before the SINR computation (zero spectral
// overlap).
type rxOutcome struct {
	rssi float64
	sinr float64
	ok   bool
	eval bool
}

// mediumRegion is the region-local slice of medium state: the radios
// whose position falls in the region's tile (members, ID-ascending),
// the subset whose hearing circle crosses the tile boundary (border,
// ID-ascending), and the region's interference-ledger pool.
// Transmissions sourced in the region draw ledgers from — and return
// them to — the region's own pool, so a region's PHY bookkeeping stays
// in memory its worker owns.
type mediumRegion struct {
	id         int
	members    []*Radio
	border     []*Radio
	ledgerFree []*ledger
}

// shardState is the medium's sharded-execution configuration. It is
// runtime-only: none of it appears in ExportState (see the package
// comment on checkpoint state).
type shardState struct {
	want        int  // requested worker count (>= 2)
	layoutPower float64
	layoutStale bool // a louder radio attached: partition must be resized
	rm          *geo.RegionMap
	regions     []*mediumRegion
	runner      *shardRunner

	// outcomes and cands are coordinator-owned phase scratch, reused
	// across events so the steady-state hot path allocates nothing.
	outcomes []rxOutcome
	cands    [][]*Radio

	// scramble reverses the sequential commit order. Test-only fault
	// injection: it exists so the determinism suite can prove it
	// detects a broken merge order (see ScrambleShardCommit).
	scramble bool
}

// phase is one parallel evaluation, described by the coordinator and
// read by every worker between a start signal and the barrier. The
// coordinator clears it after the barrier so idle workers never pin
// the world.
type phase struct {
	kind      int8
	m         *Medium
	tx        *Transmission
	receivers []*Radio
	outcomes  []rxOutcome
	noiseMW   float64
	active    []*Transmission
	hearers   []*Radio
	cands     [][]*Radio
}

const (
	phaseNone int8 = iota
	phaseDeliver
	phaseInterfere
)

// shardRunner owns the worker pool. Workers hold only the runner —
// never the Medium — so a world that becomes unreachable is collected
// normally and its finalizer stops the pool; StopShards stops it
// eagerly. Worker 0 is the coordinator itself: dispatch signals the
// n-1 spawned workers, executes the coordinator's own share, then
// waits on the barrier.
type shardRunner struct {
	workers int
	start   []chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
	ph      phase
	stopped bool
}

func newShardRunner(workers int) *shardRunner {
	sr := &shardRunner{
		workers: workers,
		start:   make([]chan struct{}, workers-1),
		quit:    make(chan struct{}),
	}
	for i := range sr.start {
		sr.start[i] = make(chan struct{}, 1)
	}
	sr.startWorkers()
	return sr
}

// startWorkers is the audited worker-pool spawn site (goroutineguard
// allowlist). The goroutines it spawns are phase executors: they sleep
// on their start channel, run one evaluate phase against the shared
// phase descriptor, and hit the barrier. Between phases they reference
// no simulator state, and the world's single-threaded contract holds
// because the coordinator blocks on the barrier for the whole lifetime
// of every phase: at no instant do two goroutines touch the medium
// without a happens-before edge between them.
func (sr *shardRunner) startWorkers() {
	for i := range sr.start {
		go sr.loop(i + 1)
	}
}

// loop is one worker: wait, evaluate, barrier, repeat until quit.
func (sr *shardRunner) loop(w int) {
	for {
		select {
		case <-sr.quit:
			return
		case <-sr.start[w-1]:
			sr.ph.exec(w, sr.workers)
			sr.wg.Done()
		}
	}
}

// dispatch runs the prepared phase across every worker and blocks
// until all of them (including the coordinator's own share) are done.
func (sr *shardRunner) dispatch() {
	sr.wg.Add(len(sr.start))
	for _, c := range sr.start {
		c <- struct{}{}
	}
	sr.ph.exec(0, sr.workers)
	sr.wg.Wait()
}

// stop terminates the worker pool. Idempotent.
func (sr *shardRunner) stop() {
	if !sr.stopped {
		sr.stopped = true
		close(sr.quit)
	}
}

// exec runs worker w's share of the phase: the receivers of every
// region r with r mod workers == w.
func (ph *phase) exec(w, workers int) {
	switch ph.kind {
	case phaseDeliver:
		ph.evalDeliver(w, workers)
	case phaseInterfere:
		ph.evalInterfere(w, workers)
	}
}

// evalDeliver computes delivery outcomes for worker w's receivers —
// exactly the values the sequential loop in finish computes, in the
// same per-receiver operation order.
func (ph *phase) evalDeliver(w, workers int) {
	m, tx := ph.m, ph.tx
	for i, rx := range ph.receivers {
		if int(rx.region)%workers != w {
			continue
		}
		o := &ph.outcomes[i]
		ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
		if ov == 0 {
			o.eval = false
			continue
		}
		mw, rssi := m.linkGain(tx.Src, rx)
		sigMW := mw * ov
		sinr := 10 * math.Log10(sigMW/(ph.noiseMW+tx.led.at(rx.ID)))
		o.rssi, o.sinr, o.ok, o.eval = rssi, sinr, sinr >= tx.Rate.MinSINRdB, true
	}
}

// evalInterfere records mutual interference between the new
// transmission and every in-flight one, partitioned by receiver
// region. For a fixed receiver every contribution is accumulated by
// the one worker owning its region, walking the active list in
// ascending Seq — the sequential accumulation order — so each ledger
// cell's floating-point sum is bit-identical to the sequential pass.
func (ph *phase) evalInterfere(w, workers int) {
	m, tx := ph.m, ph.tx
	for oi, other := range ph.active {
		// other interferes with tx's receivers.
		for _, rx := range ph.cands[oi] {
			if int(rx.region)%workers != w {
				continue
			}
			if rx.ID == tx.Src.ID {
				continue
			}
			ov := ChannelOverlap(other.Src.Channel, rx.Channel)
			if ov == 0 {
				continue
			}
			if distSq(other.Src.Pos, rx.Pos) > other.range2 {
				continue
			}
			mw, _ := m.linkGain(other.Src, rx)
			tx.led.add(rx.ID, mw*ov)
		}
		// tx interferes with other's receivers.
		for _, rx := range ph.hearers {
			if int(rx.region)%workers != w {
				continue
			}
			if rx.ID == other.Src.ID {
				continue
			}
			ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
			if ov == 0 {
				continue
			}
			if distSq(tx.Src.Pos, rx.Pos) > tx.range2 {
				continue
			}
			mw, _ := m.linkGain(tx.Src, rx)
			other.led.add(rx.ID, mw*ov)
		}
	}
}

// SetShards configures the conservative sharded execution mode with n
// workers, replacing any previous configuration. It returns the
// effective worker count: n when sharding engaged, or 1 for the
// documented sequential fallbacks — n < 2, no receive cutoff (the
// hearing radius is unbounded, so no finite tile satisfies the
// lookahead contract), or an arena too small to hold at least two
// tiles of the minimum edge. The fallback is a configuration-time
// decision; a sharded run never degrades into an error mid-run.
func (m *Medium) SetShards(n int) int {
	m.StopShards()
	if n < 2 {
		m.shardFallbackReason = "shards < 2"
		return 1
	}
	if !m.cutoffEnabled() {
		m.shardFallbackReason = "no receive cutoff"
		return 1
	}
	m.shard = &shardState{want: n}
	m.rebuildShardLayout()
	if m.shard.rm.Regions() < 2 {
		m.shard = nil
		m.shardFallbackReason = "arena smaller than two regions"
		return 1
	}
	m.shardFallbackReason = ""
	m.shard.runner = newShardRunner(n)
	// Backstop for worlds dropped without StopShards (the sweep engine
	// builds thousands): when the medium becomes unreachable the
	// workers must not leak. Workers reference only the runner, so the
	// finalizer is reachable.
	runtime.SetFinalizer(m, func(mm *Medium) { mm.StopShards() })
	return n
}

// StopShards tears down the sharded execution mode, stopping the
// worker pool and reverting the medium to sequential execution.
// Idempotent; safe on a never-sharded medium.
func (m *Medium) StopShards() {
	if m.shard == nil {
		return
	}
	if m.shard.runner != nil {
		m.shard.runner.stop()
	}
	m.shard = nil
	runtime.SetFinalizer(m, nil)
}

// Shards returns the effective worker count: 1 when sequential.
func (m *Medium) Shards() int {
	if m.shard == nil {
		return 1
	}
	return m.shard.want
}

// ScrambleShardCommit reverses the sequential commit order of sharded
// deliveries. Test-only fault injection: a scrambled commit violates
// the ascending radio-ID merge order the digest guarantee rests on,
// and the determinism regression suite pins that it catches exactly
// this class of bug. A no-op on sequential media.
func (m *Medium) ScrambleShardCommit(on bool) {
	if m.shard != nil {
		m.shard.scramble = on
	}
}

// ShardLayout describes the current region partition for diagnostics
// and tests. Deliberately not part of ExportState (see the package
// comment on checkpoint state).
type ShardLayout struct {
	Workers int   // configured worker count
	Regions int   // region (tile) count
	NX, NY  int   // tiles per axis
	Members []int // per-region member counts, region-index order
	Border  []int // per-region border-set sizes, region-index order
}

// ShardLayout reports the active partition, or ok=false when the
// medium executes sequentially.
func (m *Medium) ShardLayout() (ShardLayout, bool) {
	sh := m.shard
	if sh == nil || sh.rm == nil {
		return ShardLayout{}, false
	}
	nx, ny := sh.rm.Grid()
	out := ShardLayout{
		Workers: sh.want,
		Regions: sh.rm.Regions(),
		NX:      nx,
		NY:      ny,
		Members: make([]int, len(sh.regions)),
		Border:  make([]int, len(sh.regions)),
	}
	for i, reg := range sh.regions {
		out.Members[i] = len(reg.members)
		out.Border[i] = len(reg.border)
	}
	return out, true
}

// rebuildShardLayout (re)computes the region partition from the arena
// bounds and the loudest attached radio, then classifies every
// attached radio into its region and border set. Deterministic: it
// depends only on the arena, the cutoff, and the attached set in ID
// order. Called at SetShards and again lazily when a radio louder than
// the partition's sizing power attaches (layoutStale), since the
// minimum tile edge must cover the loudest hearing circle.
func (m *Medium) rebuildShardLayout() {
	sh := m.shard
	maxPower := math.Inf(-1)
	for _, r := range m.ordered {
		if r.TxPowerDBm > maxPower {
			maxPower = r.TxPowerDBm
		}
	}
	minTile := 0.0
	if !math.IsInf(maxPower, -1) {
		minTile = m.env.MaxRangeForCutoff(maxPower, m.cutoffDBm)
	}
	sh.layoutPower = maxPower
	sh.layoutStale = false
	sh.rm = geo.PartitionRect(m.env.Plan().Bounds, minTile, sh.want)
	sh.regions = make([]*mediumRegion, sh.rm.Regions())
	for i := range sh.regions {
		sh.regions[i] = &mediumRegion{id: i}
	}
	for _, r := range m.ordered {
		m.shardClassify(r)
	}
	// One kernel lane per region (lane 0 stays the default store), so a
	// region's txEnd events live in region-local kernel memory.
	m.kernel.ConfigureLanes(sh.rm.Regions() + 1)
}

// cachedHearingRange memoizes hearingRange per radio, keyed by its
// transmit power (the cutoff is fixed per medium), so per-move border
// reclassification performs no transcendentals.
func (m *Medium) cachedHearingRange(r *Radio) float64 {
	if r.hearRange != 0 && r.hearPower == r.TxPowerDBm {
		return r.hearRange
	}
	r.hearRange = m.hearingRange(r)
	r.hearPower = r.TxPowerDBm
	return r.hearRange
}

// insertByID inserts r into an ID-ascending radio slice.
func insertByID(s []*Radio, r *Radio) []*Radio {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= r.ID })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = r
	return s
}

// removeByID removes r from an ID-ascending radio slice, if present.
func removeByID(s []*Radio, r *Radio) []*Radio {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= r.ID })
	if i < len(s) && s[i] == r {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// shardClassify assigns r to the region owning its position and, when
// its hearing circle crosses the tile boundary, to the region's border
// set. Attach path: also flags the layout stale when r is louder than
// the partition's sizing power.
func (m *Medium) shardClassify(r *Radio) {
	sh := m.shard
	r.region = int32(sh.rm.RegionOf(r.Pos))
	reg := sh.regions[r.region]
	reg.members = insertByID(reg.members, r)
	if sh.rm.CrossesBoundary(r.Pos, m.cachedHearingRange(r)) {
		reg.border = insertByID(reg.border, r)
	}
	if r.TxPowerDBm > sh.layoutPower {
		sh.layoutStale = true
	}
}

// shardRemove detaches r from its region's member and border sets.
func (m *Medium) shardRemove(r *Radio) {
	reg := m.shard.regions[r.region]
	reg.members = removeByID(reg.members, r)
	reg.border = removeByID(reg.border, r)
}

// shardMove reclassifies a moved radio: cheap border-flag refresh when
// the move stays inside its tile, full member transfer when it crosses
// a region boundary.
func (m *Medium) shardMove(r *Radio) {
	sh := m.shard
	newRegion := int32(sh.rm.RegionOf(r.Pos))
	crosses := sh.rm.CrossesBoundary(r.Pos, m.cachedHearingRange(r))
	if newRegion != r.region {
		m.shardRemove(r)
		r.region = newRegion
		reg := sh.regions[newRegion]
		reg.members = insertByID(reg.members, r)
		if crosses {
			reg.border = insertByID(reg.border, r)
		}
		return
	}
	reg := sh.regions[r.region]
	i := sort.Search(len(reg.border), func(i int) bool { return reg.border[i].ID >= r.ID })
	inBorder := i < len(reg.border) && reg.border[i] == r
	if crosses && !inBorder {
		reg.border = insertByID(reg.border, r)
	} else if !crosses && inBorder {
		reg.border = append(reg.border[:i], reg.border[i+1:]...)
	}
}

// shardReady reports whether the parallel evaluate path may engage for
// this event: sharding configured, layout current, at least two
// regions, and no shadow fading (whose lazy RNG draws inside the gain
// computation are inherently sequential).
func (m *Medium) shardReady() bool {
	sh := m.shard
	if sh == nil || sh.runner == nil {
		return false
	}
	if sh.layoutStale {
		m.rebuildShardLayout()
	}
	return sh.rm.Regions() >= 2 && m.env.ShadowSigmaDB == 0
}

// presizeGainRow grows src's pairwise gain-cache row to the full radio
// count on the coordinator, so workers calling linkGain never trigger
// the row growth themselves (a shared-slice reallocation would race).
// The growth is exactly the one linkGain would perform.
func (m *Medium) presizeGainRow(src *Radio) {
	if m.nextID >= len(src.gainTo) {
		grown := make([]pairGain, m.nextID+1)
		copy(grown, src.gainTo)
		src.gainTo = grown
	}
}

// presizeLedger grows l's cell array to cover every current radio ID
// on the coordinator, so parallel led.add calls never grow the shared
// slice.
func (m *Medium) presizeLedger(l *ledger) {
	if m.nextID >= len(l.cells) {
		grown := make([]ledgerCell, m.nextID+1)
		copy(grown, l.cells)
		l.cells = grown
	}
}

// finishSharded is the parallel delivery fan-out: evaluate in parallel
// across regions, then commit receipts sequentially in ascending
// radio-ID order (receivers is ID-ascending). The commit watches the
// medium's physGen mutation counter and the sender's transmit power;
// the moment a callback perturbs either, the remaining receivers are
// recomputed inline — the literal sequential code — so callbacks that
// move, retune, or detach radios observe sequential semantics exactly.
func (m *Medium) finishSharded(tx *Transmission, receivers []*Radio, noiseMW float64) {
	sh := m.shard
	if cap(sh.outcomes) < len(receivers) {
		sh.outcomes = make([]rxOutcome, len(receivers))
	}
	out := sh.outcomes[:len(receivers)]
	m.presizeGainRow(tx.Src)
	gen, power := m.physGen, tx.Src.TxPowerDBm

	sr := sh.runner
	sr.ph = phase{kind: phaseDeliver, m: m, tx: tx, receivers: receivers, outcomes: out, noiseMW: noiseMW}
	m.runPhase(sr)

	var commitStart time.Time
	if m.commitTimer != nil {
		commitStart = time.Now() //aroma:realtime host-plane commit-duration stat, never enters sim state
	}
	stale := false
	commit := func(i int) {
		rx := receivers[i]
		if !stale && (m.physGen != gen || tx.Src.TxPowerDBm != power) {
			stale = true
			m.FallbackMidCommit++
		}
		if rx.OnReceive == nil || rx.down > 0 || !m.attached(rx) {
			return
		}
		var rssi, sinr float64
		var ok bool
		if stale {
			ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
			if ov == 0 {
				return
			}
			mw, rs := m.linkGain(tx.Src, rx)
			sigMW := mw * ov
			rssi = rs
			sinr = 10 * math.Log10(sigMW/(noiseMW+tx.led.at(rx.ID)))
			ok = sinr >= tx.Rate.MinSINRdB
		} else {
			o := &out[i]
			if !o.eval {
				return
			}
			rssi, sinr, ok = o.rssi, o.sinr, o.ok
		}
		m.countOutcome(ok, tx.led.at(rx.ID) > 0)
		rx.OnReceive(Receipt{Tx: tx, RSSIdBm: rssi, SINRdB: sinr, OK: ok})
	}
	if sh.scramble {
		for i := len(receivers) - 1; i >= 0; i-- {
			commit(i)
		}
	} else {
		for i := range receivers {
			commit(i)
		}
	}
	if m.commitTimer != nil {
		m.commitTimer.Observe(time.Since(commitStart)) //aroma:realtime host-plane commit-duration stat, never enters sim state
	}
}

// runPhase dispatches the prepared phase through the worker pool with
// the parallel-phase flag raised (suppressing the racy-to-count
// sequential cache stats) and, when bound, the host-plane evaluate
// timer observing the dispatch wall time. The channel send and
// WaitGroup wait inside dispatch give the flag writes their
// happens-before edges.
func (m *Medium) runPhase(sr *shardRunner) {
	var start time.Time
	if m.evalTimer != nil {
		start = time.Now() //aroma:realtime host-plane eval-duration stat, never enters sim state
	}
	m.parallelPhase = true
	sr.dispatch()
	m.parallelPhase = false
	if m.evalTimer != nil {
		m.evalTimer.Observe(time.Since(start)) //aroma:realtime host-plane eval-duration stat, never enters sim state
	}
	sr.ph = phase{}
}

// transmitSharded is the parallel interference fan-out for a new
// transmission: candidate snapshots and every shared-growth site are
// prepared sequentially on the coordinator (in the exact order the
// sequential pass would prepare them), then workers record mutual
// interference for the receivers of the regions they own. There is no
// separate commit: ledger cells are receiver-owned during the phase
// and the accumulation order per cell is the sequential order.
func (m *Medium) transmitSharded(tx *Transmission, hearers []*Radio) {
	sh := m.shard
	cands := sh.cands[:0]
	for _, other := range m.active {
		cands = append(cands, m.candidatesFor(other.Src))
		m.presizeGainRow(other.Src)
		m.presizeLedger(other.led)
	}
	sh.cands = cands
	m.presizeGainRow(tx.Src)
	m.presizeLedger(tx.led)

	sr := sh.runner
	sr.ph = phase{kind: phaseInterfere, m: m, tx: tx, hearers: hearers, active: m.active, cands: sh.cands}
	m.runPhase(sr)
	// Drop the candidate snapshots so the scratch does not pin caches
	// that a rebuild has already replaced.
	for i := range sh.cands {
		sh.cands[i] = nil
	}
	sh.cands = sh.cands[:0]
}
