package radio

import "errors"

// Fault-plane surface: the medium-side mechanisms the deterministic
// fault injector (internal/fault, wired by pkg/aroma) drives. All of it
// is ordinary single-threaded kernel-event state — fault windows open
// and close inside scheduled events, never concurrently with a shard
// phase — and all of it flows through the one linkGain path, so the
// sequential and sharded execution modes stay bit-identical under
// faults.

// PartitionLossDB is the extra path loss applied to links crossing the
// partition fence while a partition window is open. It is large but
// finite — effectively severing every realistic link budget without
// introducing -Inf into downstream dB arithmetic.
const PartitionLossDB = 300

// ErrRadioDown is returned by Transmit while the sending radio is held
// down by a fault window.
var ErrRadioDown = errors.New("radio: radio is down (fault window)")

// SetDown adjusts a radio's down depth by delta. Overlapping fault
// windows nest: the radio is down while the depth is positive, and a
// window closing never revives a radio another window still holds down.
// While down the radio cannot transmit (Transmit errors) and receives
// nothing (delivery skips it); in-flight transmissions it already
// started complete normally, mirroring a power cut after the frame left
// the antenna.
func (m *Medium) SetDown(r *Radio, delta int) {
	was := r.down > 0
	r.down += delta
	if r.down < 0 {
		r.down = 0
	}
	if is := r.down > 0; is != was {
		if is {
			m.downRadios++
		} else {
			m.downRadios--
		}
		m.physGen++
	}
}

// Down reports whether the radio is currently held down by a fault.
func (m *Medium) Down(r *Radio) bool { return r.down > 0 }

// DownRadios returns how many attached radios are currently down.
func (m *Medium) DownRadios() int { return m.downRadios }

// AddJamDB adds db of extra path loss to every link (negative db closes
// a jam window by subtracting what it added; concurrent windows stack
// additively). The loss applies inside linkGain, so RSSI, SINR, energy
// sums, and carrier sense all see it coherently; the cached pairwise
// gains are invalidated wholesale, exactly twice per window.
func (m *Medium) AddJamDB(db float64) {
	m.jamDB += db
	m.invalidateLinkGains()
}

// JamDB returns the currently applied extra path loss.
func (m *Medium) JamDB() float64 { return m.jamDB }

// SetPartitionFence places the partition fence at x (arena
// coordinates). Called once when a fault plan with partition specs is
// applied; the fence position is inert until a partition window opens.
func (m *Medium) SetPartitionFence(x float64) { m.fenceX = x }

// AddPartition adjusts the partition depth by delta. While the depth is
// positive, links crossing the fence carry PartitionLossDB of extra
// loss — two islands that cannot hear each other.
func (m *Medium) AddPartition(delta int) {
	m.partitions += delta
	if m.partitions < 0 {
		m.partitions = 0
	}
	m.invalidateLinkGains()
}

// Partitioned reports whether a partition window is open.
func (m *Medium) Partitioned() bool { return m.partitions > 0 }

// faultLossDB returns the extra path loss a fault window currently
// imposes on the src→rx link. Zero when no window is open — the common
// case, reached only on gain-cache misses.
func (m *Medium) faultLossDB(src, rx *Radio) float64 {
	loss := m.jamDB
	if m.partitions > 0 && (src.Pos.X < m.fenceX) != (rx.Pos.X < m.fenceX) {
		loss += PartitionLossDB
	}
	return loss
}

// invalidateLinkGains marks every cached pairwise gain stale by bumping
// every radio's linkGen, plus physGen for the sharded mid-commit watch.
// O(radios), paid only when a jam or partition window opens or closes;
// candidate sets are untouched (they are cell-conservative supersets —
// membership never depends on fault loss, only the exact gains do).
func (m *Medium) invalidateLinkGains() {
	for _, r := range m.ordered {
		r.linkGen++
	}
	m.physGen++
}
