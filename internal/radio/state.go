package radio

import (
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// RadioState is one attached radio in canonical export form. Derived
// caches (candidate sets, link gains, generations) are deliberately
// absent: they are rebuilt lazily and never affect physics.
type RadioState struct {
	ID             int       `json:"id"`
	Name           string    `json:"name"`
	Channel        int       `json:"channel"`
	TxPowerDBm     float64   `json:"tx_power_dbm"`
	CSThresholdDBm float64   `json:"cs_threshold_dbm"`
	Pos            geo.Point `json:"pos"`
	// Down is the fault-window depth; omitted (zero) outside faults so
	// fault-free exports stay byte-identical to pre-fault builds.
	Down int `json:"down,omitempty"`
}

// TxState is one in-flight transmission in canonical export form. The
// txEnd timer that finishes it appears in the kernel's pending-event
// export.
type TxState struct {
	Seq      uint64   `json:"seq"`
	Src      int      `json:"src"`
	Bits     int      `json:"bits"`
	RateMbps float64  `json:"rate_mbps"`
	Start    sim.Time `json:"start"`
	End      sim.Time `json:"end"`
}

// State is the medium's exportable state: the ID and transmission
// counters, the frame stats, every attached radio in ascending ID
// order, and every in-flight transmission in ascending Seq order.
type State struct {
	NextID    int          `json:"next_id"`
	Seq       uint64       `json:"seq"`
	Sent      uint64       `json:"sent"`
	Delivered uint64       `json:"delivered"`
	Lost      uint64       `json:"lost"`
	Radios    []RadioState `json:"radios,omitempty"`
	Active    []TxState    `json:"active,omitempty"`
	// Fault-plane fields, all zero (and omitted) in a fault-free world.
	JamDB      float64 `json:"jam_db,omitempty"`
	Partitions int     `json:"partitions,omitempty"`
	FenceX     float64 `json:"fence_x,omitempty"`
}

// ExportState captures the medium's current state in canonical form.
// m.ordered and m.active are already in ascending ID and Seq order.
func (m *Medium) ExportState() State {
	st := State{
		NextID:    m.nextID,
		Seq:       m.seq,
		Sent:      m.Sent,
		Delivered: m.Delivered,
		Lost:      m.Lost,
	}
	st.JamDB = m.jamDB
	st.Partitions = m.partitions
	st.FenceX = m.fenceX
	for _, r := range m.ordered {
		st.Radios = append(st.Radios, RadioState{
			ID: r.ID, Name: r.Name, Channel: r.Channel,
			TxPowerDBm: r.TxPowerDBm, CSThresholdDBm: r.CSThresholdDBm, Pos: r.Pos,
			Down: r.down,
		})
	}
	for _, tx := range m.active {
		st.Active = append(st.Active, TxState{
			Seq: tx.Seq, Src: tx.Src.ID, Bits: tx.Bits, RateMbps: tx.Rate.Mbps,
			Start: tx.Start, End: tx.End,
		})
	}
	return st
}
