// Package radio simulates the physical wireless layer of the Aroma
// testbed: 2.4 GHz ISM-band transceivers (the paper's "2.4 GHz wireless
// LAN PCMCIA card") on a shared medium.
//
// The model captures the environment- and physical-layer phenomena the
// paper calls out: limited bandwidth, ranging by received signal strength,
// co- and adjacent-channel interference, and congestion collapse as the
// concentration of devices in the band grows (the paper: "the effect of a
// high concentration of these devices needs to be studied").
//
// A Medium owns the set of attached Radios and the in-flight
// Transmissions. Delivery is SINR-based: a frame is decoded by a receiver
// if the signal-to-interference-plus-noise ratio stays above the threshold
// for the transmission's bit rate, where interference sums the power of
// every time-overlapping transmission weighted by spectral channel
// overlap.
//
// # Determinism
//
// The medium never iterates a Go map on the simulation's hot paths.
// Receipts, interference accounting, and energy sums are produced in a
// fixed order — receivers in ascending radio-ID order, in-flight
// transmissions in ascending sequence order — so a run is bit-identical
// given the same kernel seed. Model code that moves a radio must call
// Radio.SetPos (not write Pos directly) so the spatial index stays
// consistent; likewise SetChannel for channel hops.
//
// # Scaling
//
// The medium is indexed two ways so dense worlds do not pay O(radios) per
// transmission for receivers that cannot possibly hear it:
//
//   - a per-channel partition: only radios whose channel spectrally
//     overlaps the transmitter's (within ChannelOverlap's 5-channel
//     cutoff) are scanned;
//   - an optional spatial grid with a received-power cutoff
//     (WithRxCutoffDBm): radios beyond the conservative maximum range at
//     which the cutoff could still be met are skipped entirely.
//
// Candidate sets are cached per radio with cell-granular invalidation,
// so mobile worlds do not pay a global cache wipe per move: a cache
// records the grid cells its hearing-range circle covers (a geo.Cover)
// and revalidates against their per-cell generations. Only a move that
// crosses a cell boundary — or an attach, detach, or retune within the
// cache's coverage — forces a rebuild; a move inside one cell is free.
// Retunes invalidate only caches whose 5-channel overlap window touches
// the old or new channel (per-channel generation counters), not the
// whole world. The cached set is a cell-conservative superset of the
// hearing circle; delivery, interference, and energy accounting apply
// the exact range check at use time, so the physics is identical to a
// full rebuild per move (WithGlobalInvalidation, the benchmark
// reference) while mobility stays cheap.
//
// WithFullScan restores the naive scan of every attached radio (still in
// deterministic ID order) as a reference mode for benchmarks and physics
// cross-checks.
//
// # Allocation discipline
//
// The delivery hot path is allocation-free in steady state: interference
// ledgers are pooled epoch-stamped slices recycled across transmissions,
// pairwise link gains are cached in linear milliwatts (revalidated by
// per-radio position generations, so unmoved pairs recompute no
// transcendentals), the end-of-transmission event rides the kernel's
// pooled ScheduleFn path, and completed transmissions leave the active
// set by Seq binary search. Every cache memoizes exactly the value the
// uncached code would compute, in the same accumulation order, keeping
// run digests bit-identical to the unoptimized medium (see README
// "Performance" for the contract).
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
	"aroma/internal/telemetry"
)

// Channel numbering follows 802.11b North America: 1..11, 5 MHz apart,
// 22 MHz wide, so channels closer than 5 apart partially overlap.
const (
	MinChannel = 1
	MaxChannel = 11
)

// SensingDelay is the time after a transmission starts before other
// stations' carrier sense can detect it (propagation plus energy-detect
// integration). Transmissions younger than this are invisible to
// EnergyAtDBm/Busy, which creates the CSMA vulnerable window: stations
// that decide to transmit within the same window collide, exactly as in
// real 802.11 DCF.
const SensingDelay = 15 * sim.Microsecond

// Rate is one step of the 802.11b-era rate set.
type Rate struct {
	Mbps      float64
	MinSINRdB float64 // decode threshold
}

// Rates is the available rate set, ascending. The thresholds follow
// typical 802.11b receiver sensitivity ladders.
var Rates = []Rate{
	{1, 4},
	{2, 7},
	{5.5, 9},
	{11, 12},
}

// PickRate returns the fastest rate whose decode threshold is at or below
// the given SINR, or the base rate if none qualifies (the sender will try
// and likely fail, as real rate-fallback schemes do on stale state).
func PickRate(sinrDB float64) Rate {
	best := Rates[0]
	for _, r := range Rates {
		if sinrDB >= r.MinSINRdB {
			best = r
		}
	}
	return best
}

// maxOverlapDistance is the channel separation at and beyond which
// ChannelOverlap is zero; the per-channel index scans only channels
// strictly closer than this.
const maxOverlapDistance = 5

// ChannelOverlap returns the fraction of transmit power from a sender on
// channel a that lands in a receiver's filter on channel b. Values follow
// the measured 802.11b spectral-mask overlap ladder.
func ChannelOverlap(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	switch d {
	case 0:
		return 1.0
	case 1:
		return 0.7272
	case 2:
		return 0.2714
	case 3:
		return 0.0375
	case 4:
		return 0.0054
	default:
		return 0
	}
}

// Transmission is one frame in flight on the medium.
type Transmission struct {
	Seq     uint64
	Src     *Radio
	Bits    int
	Rate    Rate
	Start   sim.Time
	End     sim.Time
	payload any
	// range2 is the squared conservative hearing range for this
	// transmission when the medium has a receive cutoff; +Inf otherwise.
	// Squared so the hot-path checks compare against squared distances
	// without a square root.
	range2 float64
	// led accumulates, per prospective receiver radio ID, the worst-case
	// interference power observed while this transmission was in the
	// air. Ledgers are pooled on the medium and returned when the
	// transmission finishes.
	led *ledger
}

// ledgerCell is one receiver's interference accumulator. The epoch
// stamp makes reuse O(touched receivers): a recycled ledger bumps its
// epoch instead of zeroing every cell, and a cell whose stamp does not
// match the ledger's current epoch reads as zero.
type ledgerCell struct {
	epoch uint64
	mw    float64
}

// ledger is a dense radio-ID-indexed interference accumulator, pooled
// per Medium — or, in sharded mode, per region (home names the owning
// region's pool, offset by one; 0 is the medium-wide pool) — so the
// PHY hot path performs no per-transmission map or slice allocation in
// steady state.
type ledger struct {
	epoch uint64
	home  int32
	cells []ledgerCell
}

// add accumulates mw of interference at receiver id.
func (l *ledger) add(id int, mw float64) {
	if id >= len(l.cells) {
		grown := make([]ledgerCell, id+id/2+8)
		copy(grown, l.cells)
		l.cells = grown
	}
	c := &l.cells[id]
	if c.epoch != l.epoch {
		c.epoch, c.mw = l.epoch, mw
		return
	}
	c.mw += mw
}

// at returns the accumulated interference at receiver id.
func (l *ledger) at(id int) float64 {
	if id < len(l.cells) {
		if c := &l.cells[id]; c.epoch == l.epoch {
			return c.mw
		}
	}
	return 0
}

// Payload returns the opaque payload attached at Transmit time.
func (t *Transmission) Payload() any { return t.payload }

// Airtime returns the duration the transmission occupies the medium.
func (t *Transmission) Airtime() sim.Time { return t.End - t.Start }

// Receipt describes the outcome of a transmission at one receiver.
type Receipt struct {
	Tx      *Transmission
	RSSIdBm float64
	SINRdB  float64
	OK      bool // decoded successfully
}

// Radio is one transceiver attached to a Medium.
type Radio struct {
	ID         int
	Name       string
	Channel    int
	TxPowerDBm float64

	// Pos is the radio's current position. Treat it as read-only: moving
	// a radio must go through SetPos so the medium's spatial index stays
	// consistent.
	Pos geo.Point

	// CSThresholdDBm is the carrier-sense energy-detect threshold; the
	// medium reports busy to this radio when total in-band energy at its
	// position exceeds it.
	CSThresholdDBm float64

	// OnReceive, if non-nil, is invoked for every transmission that ends
	// while this radio is attached and not the sender, whether or not it
	// decoded (Receipt.OK tells which). Sender excluded. Receipts for one
	// transmission fire in ascending radio-ID order.
	OnReceive func(Receipt)

	medium *Medium

	// cand caches the radios that could hear this one (candidatesFor).
	// The cached slice is immutable: rebuilds allocate a fresh slice, so
	// in-flight iterations over an old snapshot stay safe. Validity is
	// mode-dependent (candValid): full-scan and global-invalidation modes
	// compare candGen against the medium's coarse topology generation;
	// the indexed modes compare the channel-window generation sum
	// (candChanSum, for candChannel's overlap window) and — with the
	// spatial cutoff — check candCover, whose dirty flag the grid sets
	// when a covered cell's membership changes. candPower guards the
	// hearing range in all modes.
	cand        []*Radio
	candGen     uint64
	candPower   float64
	candChannel int
	candChanSum uint64
	candCover   *geo.Cover

	// linkGen versions this radio's position for the pairwise gain
	// cache: every actual position change bumps it, so cached link
	// gains involving this radio (as transmitter or receiver) are
	// revalidated with two integer compares. Starts at 1 so the
	// zero-valued cache entry is never considered fresh.
	linkGen uint64

	// gainTo caches, per receiver radio ID, the received power of this
	// radio's signal in both dBm and linear milliwatts, so the
	// per-pair delivery, interference, and energy loops do zero
	// math.Pow/math.Log10 for unmoved pairs. Entries are revalidated
	// against both ends' linkGen and this radio's TxPowerDBm. In
	// sharded mode the row is region-owned state: the radio belongs to
	// exactly one region, and during a parallel phase only the worker
	// owning a receiver's region writes that receiver's entry.
	gainTo []pairGain

	// region is the index of the arena region owning this radio's
	// position under the sharded execution mode (shard.go); 0 and
	// meaningless when the medium runs sequentially. hearRange/hearPower
	// memoize the hearing radius for border reclassification on moves.
	region    int32
	hearPower float64
	hearRange float64

	// down is the fault-window depth (fault.go): while positive the
	// radio can neither transmit nor receive. A depth, not a bool, so
	// overlapping fault windows nest correctly.
	down int
}

// pairGain is one directed cached link budget: the received power at
// one receiver for this transmitter's current position, power, and the
// receiver's current position. Fading (wall loss, frozen shadow draws)
// is position-determined, so the pair of linkGens plus the transmit
// power fully key the value.
type pairGain struct {
	srcGen, rxGen uint64
	srcPower      float64
	mw            float64 // received power, linear milliwatts
	rssi          float64 // received power, dBm
}

// SetPos moves the radio, keeping the medium's spatial index in sync.
// A call with the radio's current position is a no-op: it neither
// touches the grid nor bumps any generation, so movers may re-apply a
// sampled position freely. Detached radios just update their position.
// Without a receive cutoff the candidate sets are position-independent,
// so moves neither touch the grid nor invalidate caches. With the
// cutoff, only a move that crosses a grid-cell boundary invalidates
// caches — and only those whose coverage includes the source or
// destination cell (geo.Grid's per-cell generations).
func (r *Radio) SetPos(p geo.Point) {
	if p == r.Pos {
		return
	}
	r.Pos = p
	r.linkGen++ // all cached link gains to and from this radio are stale
	m := r.medium
	if m == nil {
		return
	}
	m.physGen++
	if !m.attached(r) {
		return
	}
	if m.shard != nil && m.shard.rm != nil {
		m.shardMove(r)
	}
	if m.cutoffEnabled() {
		m.grid.Move(r.ID, p)
		if m.globalInval {
			m.topoGen++
		}
	}
}

// SetChannel retunes the radio, clamping to the legal range and keeping
// the medium's channel partition in sync. A retune invalidates only the
// candidate caches whose 5-channel overlap window touches the old or new
// channel; radios spectrally out of reach keep their caches.
func (r *Radio) SetChannel(ch int) {
	ch = clampChannel(ch)
	if ch == r.Channel {
		return
	}
	if m := r.medium; m != nil {
		m.physGen++
	}
	if m := r.medium; m != nil && m.attached(r) {
		m.channelRemove(r)
		old := r.Channel
		r.Channel = ch
		m.channelInsert(r)
		if m.globalInval {
			m.topoGen++
		} else {
			m.chanGen[old]++
			m.chanGen[ch]++
		}
		return
	}
	r.Channel = ch
}

func clampChannel(ch int) int {
	if ch < MinChannel {
		return MinChannel
	}
	if ch > MaxChannel {
		return MaxChannel
	}
	return ch
}

// MediumOption configures a Medium at construction time.
type MediumOption func(*Medium)

// WithRxCutoffDBm enables the spatial index: receivers whose best-case
// received power for a transmission would fall below dbm are skipped by
// delivery, interference, and energy accounting. Choose a cutoff at or
// below the noise floor (-100 dBm thermal) so each skipped contribution
// is at most noise-level. Note the error bound is per contribution: with
// k concurrent just-out-of-range interferers the skipped interference
// can sum to k times the cutoff power, so when many simultaneous
// transmissions are expected and decode outcomes near the margin matter,
// lower the cutoff by 10*log10(k) (e.g. -110 dBm for k=10). The default
// (cutoff disabled) is exact.
func WithRxCutoffDBm(dbm float64) MediumOption {
	return func(m *Medium) { m.cutoffDBm = dbm }
}

// WithGridCellM sets the spatial-index cell size in metres (default
// geo.DefaultGridCell). Smaller cells tighten range queries in very dense
// worlds at a little extra bookkeeping per move.
func WithGridCellM(meters float64) MediumOption {
	return func(m *Medium) {
		if meters > 0 {
			m.gridCell = meters
		}
	}
}

// WithFullScan disables the per-channel partition and the spatial cutoff:
// every attached radio is scanned for every transmission, in ascending ID
// order. This is the naive reference mode used by benchmarks and physics
// cross-checks; it is still fully deterministic.
func WithFullScan() MediumOption {
	return func(m *Medium) { m.fullScan = true }
}

// WithGlobalInvalidation makes every topology change — including every
// cutoff-enabled move and every retune — bump one medium-wide generation
// that wipes all candidate caches, instead of the default cell- and
// channel-granular invalidation. Physics and digests are identical to
// the default; only rebuild frequency differs. This is the reference
// arm for the BenchmarkMediumDenseMobile* comparison and for
// cross-checking the granular invalidation, not a mode to run worlds in.
func WithGlobalInvalidation() MediumOption {
	return func(m *Medium) { m.globalInval = true }
}

// Medium is the shared 2.4 GHz band.
type Medium struct {
	kernel *sim.Kernel
	env    *env.Environment

	// byID is a dense ID-indexed attachment table (IDs are assigned
	// densely from 1 and never reused): byID[r.ID] == r iff r is
	// attached. It replaces the former map so attachment checks on the
	// hot path are a bounds check plus one compare, with no hashing.
	byID      []*Radio
	ordered   []*Radio                 // all attached radios, ID-ascending
	byChannel [MaxChannel + 1][]*Radio // per-channel partition, ID-ascending
	grid      *geo.Grid                // spatial index over radio positions

	// active holds in-flight transmissions in ascending Seq order, so
	// energy and interference sums always accumulate identically.
	active []*Transmission

	// ledgerFree recycles interference ledgers across transmissions;
	// ledgerEpoch stamps each tenancy (see ledger).
	ledgerFree  []*ledger
	ledgerEpoch uint64

	// rxScratch is the reusable in-range receiver buffer for finish;
	// deliveries never nest, so one buffer serves every transmission.
	rxScratch []*Radio

	// noiseMW/noiseDBm memoize the environment noise floor keyed by the
	// ambient component, so per-delivery and per-carrier-sense noise
	// sums skip the dBm→mW transcendentals.
	noiseKey   float64
	noiseMW    float64
	noiseDBm   float64
	noiseValid bool

	nextID int
	seq    uint64

	cutoffDBm   float64 // receive cutoff; -Inf disables the spatial skip
	gridCell    float64
	fullScan    bool
	globalInval bool

	// topoGen counts membership changes (attach, detach) — the only
	// events that invalidate full-scan candidate caches. In
	// WithGlobalInvalidation mode it additionally counts every move and
	// retune, restoring the coarse wipe-the-world behaviour.
	topoGen uint64

	// chanGen counts, per channel, the attaches, detaches, and retunes
	// touching that channel. A candidate cache built for channel c is
	// invalidated by a change to the generation sum over c's 5-channel
	// overlap window — and only by that, so a retune on the far side of
	// the band leaves it untouched.
	chanGen [MaxChannel + 1]uint64

	// physGen counts every PHY-relevant mutation routed through the
	// medium's mutator methods: moves, retunes, attaches, detaches. The
	// sharded commit loop (shard.go) compares it across receipt
	// callbacks to detect a callback that perturbed the world mid-commit
	// and fall back to inline sequential recomputation.
	physGen uint64

	// Fault-plane state (fault.go): jamDB is the open jam windows' total
	// extra path loss; partitions is the open partition-window depth with
	// fenceX the fence abscissa; downRadios counts attached radios
	// currently held down. All zero in a fault-free world.
	jamDB      float64
	partitions int
	fenceX     float64
	downRadios int

	// shard is the sharded-execution configuration, nil when the medium
	// runs sequentially (the default). pendingShards carries the
	// WithShards option value until construction completes.
	shard         *shardState
	pendingShards int

	// shardFallbackReason records why the last SetShards call fell back
	// to sequential execution ("" when sharding engaged or was never
	// requested); the runtime Fallback* counters below count per-event
	// fallbacks of an engaged sharded medium.
	shardFallbackReason string

	// parallelPhase is true while shard workers are evaluating. The
	// observability-only gain-cache counters below are skipped during a
	// parallel phase (incrementing them from workers would race);
	// cache *behavior* is identical either way.
	parallelPhase bool

	// evalTimer/commitTimer are optional host-plane wall-clock
	// accumulators for the sharded evaluate dispatches and sequential
	// commit loops (BindHostTimers). Host-plane: never exported,
	// digested, or sampled into sim series.
	evalTimer   *telemetry.HostTimer
	commitTimer *telemetry.HostTimer

	// Stats. Sent/Delivered/Lost are part of ExportState (canonical
	// frame accounting); everything below them is observability-only —
	// read by telemetry func instruments, absent from ExportState and
	// every digest input.
	Sent      uint64
	Delivered uint64
	Lost      uint64

	// Collisions counts lost frames that had nonzero co-channel
	// interference on the receiver (a genuine collision rather than
	// range loss); CaptureWins counts decoded frames that overcame
	// nonzero interference (the capture effect).
	Collisions  uint64
	CaptureWins uint64

	// GainHits/GainMisses count pairwise link-gain cache lookups on the
	// sequential paths. Lookups made by shard workers during a parallel
	// phase are not counted (see parallelPhase), so the hit rate
	// describes the sequential/coordinator share of traffic.
	GainHits   uint64
	GainMisses uint64

	// Per-event sharded-execution fallbacks: an engaged sharded medium
	// that ran a particular fan-out sequentially, by reason.
	FallbackSmallFanout uint64 // fan-out below shardMinFanout
	FallbackShadow      uint64 // shadow fading forces sequential gains
	FallbackLayout      uint64 // layout rebuild collapsed to < 2 regions
	FallbackMidCommit   uint64 // commit callback perturbed the world mid-fan-out
}

// NewMedium creates an empty medium over the given environment.
func NewMedium(k *sim.Kernel, e *env.Environment, opts ...MediumOption) *Medium {
	m := &Medium{
		kernel:    k,
		env:       e,
		cutoffDBm: math.Inf(-1),
		gridCell:  geo.DefaultGridCell,
	}
	for _, opt := range opts {
		opt(m)
	}
	m.grid = geo.NewGrid(m.gridCell)
	if m.pendingShards > 1 {
		m.SetShards(m.pendingShards)
	}
	return m
}

// Kernel returns the owning simulation kernel.
func (m *Medium) Kernel() *sim.Kernel { return m.kernel }

// Env returns the propagation environment.
func (m *Medium) Env() *env.Environment { return m.env }

// RxCutoffDBm returns the configured receive cutoff (-Inf when disabled).
func (m *Medium) RxCutoffDBm() float64 { return m.cutoffDBm }

func (m *Medium) cutoffEnabled() bool {
	return !m.fullScan && !math.IsInf(m.cutoffDBm, -1)
}

func (m *Medium) attached(r *Radio) bool {
	return r.ID < len(m.byID) && m.byID[r.ID] == r
}

// NewRadio creates, attaches and returns a radio. Channel is clamped to
// the legal range.
func (m *Medium) NewRadio(name string, pos geo.Point, channel int, txPowerDBm float64) *Radio {
	m.nextID++
	r := &Radio{
		ID:             m.nextID,
		Name:           name,
		Pos:            pos,
		Channel:        clampChannel(channel),
		TxPowerDBm:     txPowerDBm,
		CSThresholdDBm: -82,
		medium:         m,
		linkGen:        1,
	}
	for len(m.byID) <= r.ID {
		m.byID = append(m.byID, nil)
	}
	m.byID[r.ID] = r
	m.ordered = append(m.ordered, r) // IDs are monotonic: stays sorted
	m.channelInsert(r)
	m.grid.Insert(r.ID, pos) // bumps the destination cell's generation
	m.topoGen++
	m.chanGen[r.Channel]++
	m.physGen++
	if m.shard != nil && m.shard.rm != nil {
		m.shardClassify(r)
	}
	return r
}

func (m *Medium) channelInsert(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	ids = append(ids, nil)
	copy(ids[i+1:], ids[i:])
	ids[i] = r
	m.byChannel[r.Channel] = ids
}

func (m *Medium) channelRemove(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	if i < len(ids) && ids[i] == r {
		m.byChannel[r.Channel] = append(ids[:i], ids[i+1:]...)
	}
}

// Detach removes a radio from the medium; in-flight transmissions to it
// are not delivered.
func (m *Medium) Detach(r *Radio) {
	if !m.attached(r) {
		return
	}
	m.byID[r.ID] = nil
	i := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].ID >= r.ID })
	if i < len(m.ordered) && m.ordered[i] == r {
		m.ordered = append(m.ordered[:i], m.ordered[i+1:]...)
	}
	m.channelRemove(r)
	m.grid.Remove(r.ID) // bumps the vacated cell's generation
	m.grid.Release(r.candCover)
	r.cand, r.candCover = nil, nil
	m.topoGen++
	m.chanGen[r.Channel]++
	m.physGen++
	if m.shard != nil && m.shard.rm != nil {
		m.shardRemove(r)
	}
}

// Radios returns the number of attached radios.
func (m *Medium) Radios() int { return len(m.ordered) }

// hearingRange returns the conservative maximum distance at which a
// transmission from r can still reach the receive cutoff, or +Inf when
// the cutoff is disabled.
func (m *Medium) hearingRange(r *Radio) float64 {
	if !m.cutoffEnabled() {
		return math.Inf(1)
	}
	return m.env.MaxRangeForCutoff(r.TxPowerDBm, m.cutoffDBm)
}

// overlapWindow returns the inclusive channel range spectrally coupled
// to ch (nonzero ChannelOverlap), clamped to the legal band.
func overlapWindow(ch int) (lo, hi int) {
	lo, hi = ch-(maxOverlapDistance-1), ch+(maxOverlapDistance-1)
	if lo < MinChannel {
		lo = MinChannel
	}
	if hi > MaxChannel {
		hi = MaxChannel
	}
	return lo, hi
}

// chanGenSum sums the per-channel generations over [lo, hi]. Generations
// only grow, so the sum changes iff any channel in the window changed.
func (m *Medium) chanGenSum(lo, hi int) uint64 {
	var s uint64
	for ch := lo; ch <= hi; ch++ {
		s += m.chanGen[ch]
	}
	return s
}

// candidatesFor returns every attached radio that could receive energy
// from src — spectrally overlapping channel and, when the cutoff is
// enabled, within the grid cells covering src's hearing-range circle —
// excluding src itself, in ascending radio-ID order. With the cutoff the
// set is a cell-conservative superset of the hearing circle: use sites
// apply the exact per-transmission range check themselves.
//
// The result is cached on src and revalidated per call (candValid);
// rebuilds happen only when a relevant slice of the topology changed.
// Callers must treat the returned slice as immutable; it is safe to keep
// iterating across a topology change mid-delivery, because rebuilds
// allocate a fresh slice.
func (m *Medium) candidatesFor(src *Radio) []*Radio {
	if src.cand != nil && src.candPower == src.TxPowerDBm && m.candValid(src) {
		return src.cand
	}
	out := m.buildCandidates(src)
	src.cand, src.candPower = out, src.TxPowerDBm
	return out
}

// candValid reports whether src's cached candidate set still describes
// the medium, per the active indexing mode.
func (m *Medium) candValid(src *Radio) bool {
	if m.fullScan || m.globalInval {
		return src.candGen == m.topoGen
	}
	if src.Channel != src.candChannel {
		return false
	}
	lo, hi := overlapWindow(src.Channel)
	if src.candChanSum != m.chanGenSum(lo, hi) {
		return false
	}
	if !m.cutoffEnabled() {
		return true
	}
	return m.grid.CoverValid(src.candCover, src.Pos)
}

func (m *Medium) buildCandidates(src *Radio) []*Radio {
	dst := make([]*Radio, 0, 16)
	if m.fullScan {
		for _, r := range m.ordered {
			if r != src {
				dst = append(dst, r)
			}
		}
		src.candGen = m.topoGen
		return dst
	}
	src.candGen = m.topoGen
	src.candChannel = src.Channel
	lo, hi := overlapWindow(src.Channel)
	src.candChanSum = m.chanGenSum(lo, hi)
	if m.cutoffEnabled() {
		rangeM := m.hearingRange(src)
		collect := func(id int, _ geo.Point) {
			r := m.byID[id]
			if r == src || r.Channel < lo || r.Channel > hi {
				return
			}
			dst = append(dst, r)
		}
		if m.globalInval {
			// Reference mode: exact circle at build time, rebuilt on
			// every move — the pre-cell-granular behaviour.
			m.grid.VisitCircle(src.Pos, rangeM, collect)
		} else {
			cover := src.candCover
			if m.grid.Anchored(cover, src.Pos, rangeM) {
				// Same cell box: reuse the registration, just re-walk.
				m.grid.Refresh(cover)
			} else {
				m.grid.Release(cover)
				cover = m.grid.CoverFor(src.Pos, rangeM)
				src.candCover = cover
			}
			m.grid.VisitCover(cover, collect)
			if !m.attached(src) {
				// A detached radio can rebuild once more while its last
				// transmission is in flight; don't leave a registered
				// cover behind that nothing would ever release.
				m.grid.Release(cover)
				src.candCover = nil
			}
		}
		// The grid visits cell-major; restore the global ID order.
		sort.Sort(byIDOrder(dst))
		return dst
	}
	total := 0
	for ch := lo; ch <= hi; ch++ {
		total += len(m.byChannel[ch])
	}
	if total*3 >= len(m.ordered)*2 {
		// The overlap window holds most of the band: a filtered scan of
		// the global ID order beats a multi-way merge.
		for _, r := range m.ordered {
			if r != src && r.Channel >= lo && r.Channel <= hi {
				dst = append(dst, r)
			}
		}
		return dst
	}
	// Sparse window: merge the (already ID-sorted) per-channel slices,
	// skipping src.
	var heads [2*maxOverlapDistance - 1][]*Radio
	n := 0
	for ch := lo; ch <= hi; ch++ {
		if s := m.byChannel[ch]; len(s) > 0 {
			heads[n] = s
			n++
		}
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if len(heads[i]) == 0 {
				continue
			}
			if best < 0 || heads[i][0].ID < heads[best][0].ID {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		if r := heads[best][0]; r != src {
			dst = append(dst, r)
		}
		heads[best] = heads[best][1:]
	}
}

// distSq returns the squared Euclidean distance between two points; the
// hot paths compare it against squared ranges to avoid the square root.
func distSq(a, b geo.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// squared returns v*v, preserving +Inf (the disabled-cutoff range).
func squared(v float64) float64 { return v * v }

// byIDOrder sorts radios by ascending ID.
type byIDOrder []*Radio

func (s byIDOrder) Len() int           { return len(s) }
func (s byIDOrder) Less(i, j int) bool { return s[i].ID < s[j].ID }
func (s byIDOrder) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// linkGain returns the received power at rx for a transmission from
// src, in linear milliwatts and dBm, through the per-pair cache. The
// value is exactly DBmToMilliwatts(env.ReceivedPowerDBm(...)) — the
// cache only removes the math.Pow/math.Log10 recomputation for pairs
// whose endpoints have not moved (linkGen) and whose transmit power is
// unchanged, so every downstream sum is bit-identical to the uncached
// path. Environment propagation parameters (exponent, walls, shadow
// sigma) are build-time constants of a run; deterministic shadow draws
// happen on first computation exactly as they would uncached.
//
// Memory: each transmitting radio's row is sized to the full radio
// count on first use, so the cache is O(radios²) worst case — 40 bytes
// per directed pair, ~40 MB at 1000 radios (see README "Performance").
// The spatial cutoff keeps the *computed* pair set local, but the row
// itself is dense for O(1) indexing.
func (m *Medium) linkGain(src, rx *Radio) (mw, rssi float64) {
	if rx.ID >= len(src.gainTo) {
		grown := make([]pairGain, m.nextID+1)
		copy(grown, src.gainTo)
		src.gainTo = grown
	}
	g := &src.gainTo[rx.ID]
	if g.srcGen == src.linkGen && g.rxGen == rx.linkGen && g.srcPower == src.TxPowerDBm {
		if !m.parallelPhase {
			m.GainHits++
		}
		return g.mw, g.rssi
	}
	if !m.parallelPhase {
		m.GainMisses++
	}
	rssi = m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, rx.Pos)
	// Open fault windows (jam, partition) add loss here, in the one gain
	// path every consumer shares; window toggles bump every linkGen, so
	// a cached value never outlives the window that shaped it.
	if m.jamDB != 0 || m.partitions > 0 {
		rssi -= m.faultLossDB(src, rx)
	}
	mw = env.DBmToMilliwatts(rssi)
	*g = pairGain{srcGen: src.linkGen, rxGen: rx.linkGen, srcPower: src.TxPowerDBm, mw: mw, rssi: rssi}
	return mw, rssi
}

// noiseFloor memoizes the environment's RF noise floor (mW and dBm),
// keyed by the ambient component — the only input that can change.
func (m *Medium) noiseFloor() (mw, dbm float64) {
	if !m.noiseValid || m.noiseKey != m.env.AmbientNoiseDBm {
		m.noiseKey = m.env.AmbientNoiseDBm
		m.noiseDBm = m.env.NoiseFloorDBm()
		m.noiseMW = env.DBmToMilliwatts(m.noiseDBm)
		m.noiseValid = true
	}
	return m.noiseMW, m.noiseDBm
}

// acquireLedger takes a pooled interference ledger for a new
// transmission, stamping a fresh epoch so stale cells read as zero.
func (m *Medium) acquireLedger() *ledger {
	m.ledgerEpoch++
	var l *ledger
	if n := len(m.ledgerFree); n > 0 {
		l = m.ledgerFree[n-1]
		m.ledgerFree = m.ledgerFree[:n-1]
	} else {
		l = &ledger{}
	}
	l.epoch = m.ledgerEpoch
	return l
}

// acquireLedgerFor is acquireLedger routed through the source radio's
// region pool when the medium is sharded, so a region's transmissions
// recycle region-local ledgers. Sharded ledgers are additionally
// pre-sized to the full radio count: parallel interference phases must
// never grow the shared cell slice.
func (m *Medium) acquireLedgerFor(src *Radio) *ledger {
	sh := m.shard
	if sh == nil || sh.rm == nil {
		return m.acquireLedger()
	}
	reg := sh.regions[src.region]
	m.ledgerEpoch++
	var l *ledger
	if n := len(reg.ledgerFree); n > 0 {
		l = reg.ledgerFree[n-1]
		reg.ledgerFree = reg.ledgerFree[:n-1]
	} else {
		l = &ledger{}
	}
	l.epoch = m.ledgerEpoch
	l.home = int32(src.region) + 1
	m.presizeLedger(l)
	return l
}

// releaseLedger returns a finished transmission's ledger to its home
// pool: the owning region's when sharded (and the region still
// exists — a repartition may have shrunk the region set mid-flight),
// the medium-wide pool otherwise.
func (m *Medium) releaseLedger(l *ledger) {
	if h := int(l.home) - 1; h >= 0 {
		if sh := m.shard; sh != nil && h < len(sh.regions) {
			sh.regions[h].ledgerFree = append(sh.regions[h].ledgerFree, l)
			return
		}
		l.home = 0
	}
	m.ledgerFree = append(m.ledgerFree, l)
}

// energyAtMW returns the total in-band energy a radio currently senses
// in linear milliwatts: the channel-overlap-weighted sum of all active
// transmissions' received power at the radio's position, plus the noise
// floor. Transmissions are summed in ascending sequence order with
// cached per-pair gains, so the floating-point result is bit-identical
// across runs and to the uncached computation.
func (m *Medium) energyAtMW(r *Radio) float64 {
	total, _ := m.noiseFloor()
	now := m.kernel.Now()
	for _, tx := range m.active {
		if tx.Src.ID == r.ID {
			continue
		}
		if now-tx.Start < SensingDelay {
			continue // within the vulnerable window: not yet detectable
		}
		ov := ChannelOverlap(tx.Src.Channel, r.Channel)
		if ov == 0 {
			continue
		}
		if distSq(tx.Src.Pos, r.Pos) > tx.range2 {
			continue // below the receive cutoff by construction
		}
		mw, _ := m.linkGain(tx.Src, r)
		total += mw * ov
	}
	return total
}

// EnergyAtDBm returns the total in-band energy a radio currently
// senses, in dBm (see energyAtMW).
func (m *Medium) EnergyAtDBm(r *Radio) float64 {
	return env.MilliwattsToDBm(m.energyAtMW(r))
}

// Busy reports whether the radio's carrier sense sees the medium busy.
// The comparison stays in the dB domain so the decision is bit-for-bit
// the one the unoptimized model made.
func (m *Medium) Busy(r *Radio) bool {
	return m.EnergyAtDBm(r) > r.CSThresholdDBm
}

// SNRAtDBm returns the signal-to-noise ratio (no interference) a receiver
// would see for a transmission from src, used for rate selection.
func (m *Medium) SNRAtDBm(src, dst *Radio) float64 {
	_, rx := m.linkGain(src, dst)
	_, noiseDBm := m.noiseFloor()
	return rx - noiseDBm
}

// MeasureRSSI returns the received power at dst for a probe from src —
// the primitive on which RSSI ranging is built.
func (m *Medium) MeasureRSSI(src, dst *Radio) float64 {
	_, rssi := m.linkGain(src, dst)
	return rssi
}

// ErrZeroBits is returned by Transmit for an empty frame.
var ErrZeroBits = errors.New("radio: transmission must carry at least one bit")

// Transmit puts a frame on the air from r. The frame occupies the medium
// for bits/rate seconds; when it ends, every other attached radio's
// OnReceive fires with a Receipt, in ascending radio-ID order. The
// payload is carried opaquely.
func (m *Medium) Transmit(r *Radio, bits int, rate Rate, payload any) (*Transmission, error) {
	if bits <= 0 {
		return nil, ErrZeroBits
	}
	if !m.attached(r) {
		return nil, fmt.Errorf("radio: %s not attached", r.Name)
	}
	if r.down > 0 {
		return nil, ErrRadioDown
	}
	airSeconds := float64(bits) / (rate.Mbps * 1e6)
	now := m.kernel.Now()
	m.seq++
	tx := &Transmission{
		Seq:     m.seq,
		Src:     r,
		Bits:    bits,
		Rate:    rate,
		Start:   now,
		End:     now + sim.Time(airSeconds*float64(sim.Second)),
		payload: payload,
		range2:  squared(m.hearingRange(r)),
		led:     m.acquireLedgerFor(r),
	}
	// Record mutual interference with all currently active transmissions,
	// oldest first.
	hearers := m.candidatesFor(r)
	if len(m.active) > 0 && len(hearers) >= shardMinFanout && m.shardReady() {
		m.transmitSharded(tx, hearers)
	} else {
		if m.shard != nil && len(m.active) > 0 {
			m.noteShardFallback(len(hearers))
		}
		for _, other := range m.active {
			m.recordInterference(tx, other, m.candidatesFor(other.Src))
			m.recordInterference(other, tx, hearers)
		}
	}
	m.active = append(m.active, tx) // Seq is monotonic: stays sorted
	m.Sent++
	lane := 0
	if sh := m.shard; sh != nil && sh.rm != nil {
		lane = int(r.region) + 1 // region-local kernel lane for the txEnd event
	}
	m.kernel.ScheduleFnLane(lane, tx.End-now, "radio.txEnd", finishTransmission, tx)
	return tx, nil
}

// finishTransmission is the ScheduleFn trampoline for the
// end-of-transmission event; the medium is recovered from the sender,
// whose binding outlives detachment.
func finishTransmission(a any) {
	tx := a.(*Transmission)
	tx.Src.medium.finish(tx)
}

// recordInterference adds other's power into victim's per-receiver
// interference ledger. hearers is the candidate set for other.Src (the
// radios that could hear the interfering emission), in ascending ID
// order; receivers beyond other's exact hearing range are skipped here,
// since the candidate set is only cell-conservative.
func (m *Medium) recordInterference(victim, other *Transmission, hearers []*Radio) {
	for _, rx := range hearers {
		if rx.ID == victim.Src.ID {
			continue
		}
		ov := ChannelOverlap(other.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		if distSq(other.Src.Pos, rx.Pos) > other.range2 {
			continue // below the receive cutoff by construction
		}
		mw, _ := m.linkGain(other.Src, rx)
		victim.led.add(rx.ID, mw*ov)
	}
}

// finish delivers a completed transmission to every radio that could hear
// it, in ascending radio-ID order.
func (m *Medium) finish(tx *Transmission) {
	// active is Seq-ascending and Seq is monotonic, so the completed
	// transmission is found by binary search: overlapping transmissions
	// completing out of order (shorter frames started later) cost
	// O(log active), not a linear scan.
	if i := sort.Search(len(m.active), func(i int) bool { return m.active[i].Seq >= tx.Seq }); i < len(m.active) && m.active[i] == tx {
		m.active = append(m.active[:i], m.active[i+1:]...)
	}
	noiseMW, _ := m.noiseFloor()
	// The candidate snapshot is immutable: OnReceive callbacks may
	// transmit or attach/detach radios without disturbing this delivery
	// round (detached receivers are re-checked below). The exact range
	// decision is likewise frozen here, before any callback runs: a
	// callback that moves a radio must not change this round's delivery
	// membership, or the cell-conservative superset and a rebuilt exact
	// circle would disagree. The frozen in-range set lives in a scratch
	// buffer reused across deliveries (finish never nests: it only runs
	// as a kernel event, and callbacks can only schedule, not deliver).
	receivers := m.candidatesFor(tx.Src)
	if !math.IsInf(tx.range2, 1) {
		inRange := m.rxScratch[:0]
		for _, rx := range receivers {
			if distSq(tx.Src.Pos, rx.Pos) <= tx.range2 {
				inRange = append(inRange, rx)
			}
		}
		m.rxScratch = inRange[:0]
		receivers = inRange
	}
	if len(receivers) >= shardMinFanout && m.shardReady() {
		m.finishSharded(tx, receivers, noiseMW)
	} else {
		if m.shard != nil {
			m.noteShardFallback(len(receivers))
		}
		for _, rx := range receivers {
			if rx.OnReceive == nil || rx.down > 0 || !m.attached(rx) {
				continue
			}
			ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
			if ov == 0 {
				continue
			}
			mw, rssi := m.linkGain(tx.Src, rx)
			sigMW := mw * ov
			intMW := tx.led.at(rx.ID)
			sinr := 10 * math.Log10(sigMW/(noiseMW+intMW))
			ok := sinr >= tx.Rate.MinSINRdB
			m.countOutcome(ok, intMW > 0)
			rx.OnReceive(Receipt{Tx: tx, RSSIdBm: rssi, SINRdB: sinr, OK: ok})
		}
	}
	// The ledger is no longer needed: recordInterference only targets
	// active transmissions, and delivery above has consumed every cell.
	m.releaseLedger(tx.led)
	tx.led = nil
}

// countOutcome updates the delivery stats for one receipt: the
// canonical Delivered/Lost pair plus the observability-only
// collision/capture classification (interfered reports whether the
// receiver saw nonzero co-channel interference for the frame).
func (m *Medium) countOutcome(ok, interfered bool) {
	if ok {
		m.Delivered++
		if interfered {
			m.CaptureWins++
		}
	} else {
		m.Lost++
		if interfered {
			m.Collisions++
		}
	}
}

// noteShardFallback classifies why an engaged sharded medium ran one
// fan-out sequentially. Callers have already decided to fall back; the
// reason mirrors the short-circuit order of the engage condition.
func (m *Medium) noteShardFallback(fanout int) {
	switch {
	case fanout < shardMinFanout:
		m.FallbackSmallFanout++
	case m.env.ShadowSigmaDB != 0:
		m.FallbackShadow++
	default:
		m.FallbackLayout++
	}
}

// ShardFallback returns why the last SetShards call fell back to
// sequential execution, or "" when sharding engaged (or was never
// requested).
func (m *Medium) ShardFallback() string { return m.shardFallbackReason }

// BindHostTimers attaches host-plane wall-clock accumulators for the
// sharded execution mode: eval observes each parallel evaluate
// dispatch, commit each sequential receipt-commit loop. Either may be
// nil. Host-plane contract: the timers never feed ExportState, any
// digest, or sim-time series.
func (m *Medium) BindHostTimers(eval, commit *telemetry.HostTimer) {
	m.evalTimer, m.commitTimer = eval, commit
}

// ActiveTransmissions returns the number of frames currently in the air.
func (m *Medium) ActiveTransmissions() int { return len(m.active) }

// EstimateDistance performs RSSI ranging from src to dst: it measures the
// received power and inverts the free-space-with-exponent model. Walls and
// shadowing corrupt the estimate, reproducing experiment C8.
func (m *Medium) EstimateDistance(src, dst *Radio) float64 {
	rssi := m.MeasureRSSI(src, dst)
	return m.env.EstimateDistanceFromRSSI(src.TxPowerDBm, rssi)
}
