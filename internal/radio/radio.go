// Package radio simulates the physical wireless layer of the Aroma
// testbed: 2.4 GHz ISM-band transceivers (the paper's "2.4 GHz wireless
// LAN PCMCIA card") on a shared medium.
//
// The model captures the environment- and physical-layer phenomena the
// paper calls out: limited bandwidth, ranging by received signal strength,
// co- and adjacent-channel interference, and congestion collapse as the
// concentration of devices in the band grows (the paper: "the effect of a
// high concentration of these devices needs to be studied").
//
// A Medium owns the set of attached Radios and the in-flight
// Transmissions. Delivery is SINR-based: a frame is decoded by a receiver
// if the signal-to-interference-plus-noise ratio stays above the threshold
// for the transmission's bit rate, where interference sums the power of
// every time-overlapping transmission weighted by spectral channel
// overlap.
//
// # Determinism
//
// The medium never iterates a Go map on the simulation's hot paths.
// Receipts, interference accounting, and energy sums are produced in a
// fixed order — receivers in ascending radio-ID order, in-flight
// transmissions in ascending sequence order — so a run is bit-identical
// given the same kernel seed. Model code that moves a radio must call
// Radio.SetPos (not write Pos directly) so the spatial index stays
// consistent; likewise SetChannel for channel hops.
//
// # Scaling
//
// The medium is indexed two ways so dense worlds do not pay O(radios) per
// transmission for receivers that cannot possibly hear it:
//
//   - a per-channel partition: only radios whose channel spectrally
//     overlaps the transmitter's (within ChannelOverlap's 5-channel
//     cutoff) are scanned;
//   - an optional spatial grid with a received-power cutoff
//     (WithRxCutoffDBm): radios beyond the conservative maximum range at
//     which the cutoff could still be met are skipped entirely.
//
// WithFullScan restores the naive scan of every attached radio (still in
// deterministic ID order) as a reference mode for benchmarks and physics
// cross-checks.
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// Channel numbering follows 802.11b North America: 1..11, 5 MHz apart,
// 22 MHz wide, so channels closer than 5 apart partially overlap.
const (
	MinChannel = 1
	MaxChannel = 11
)

// SensingDelay is the time after a transmission starts before other
// stations' carrier sense can detect it (propagation plus energy-detect
// integration). Transmissions younger than this are invisible to
// EnergyAtDBm/Busy, which creates the CSMA vulnerable window: stations
// that decide to transmit within the same window collide, exactly as in
// real 802.11 DCF.
const SensingDelay = 15 * sim.Microsecond

// Rate is one step of the 802.11b-era rate set.
type Rate struct {
	Mbps      float64
	MinSINRdB float64 // decode threshold
}

// Rates is the available rate set, ascending. The thresholds follow
// typical 802.11b receiver sensitivity ladders.
var Rates = []Rate{
	{1, 4},
	{2, 7},
	{5.5, 9},
	{11, 12},
}

// PickRate returns the fastest rate whose decode threshold is at or below
// the given SINR, or the base rate if none qualifies (the sender will try
// and likely fail, as real rate-fallback schemes do on stale state).
func PickRate(sinrDB float64) Rate {
	best := Rates[0]
	for _, r := range Rates {
		if sinrDB >= r.MinSINRdB {
			best = r
		}
	}
	return best
}

// maxOverlapDistance is the channel separation at and beyond which
// ChannelOverlap is zero; the per-channel index scans only channels
// strictly closer than this.
const maxOverlapDistance = 5

// ChannelOverlap returns the fraction of transmit power from a sender on
// channel a that lands in a receiver's filter on channel b. Values follow
// the measured 802.11b spectral-mask overlap ladder.
func ChannelOverlap(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	switch d {
	case 0:
		return 1.0
	case 1:
		return 0.7272
	case 2:
		return 0.2714
	case 3:
		return 0.0375
	case 4:
		return 0.0054
	default:
		return 0
	}
}

// Transmission is one frame in flight on the medium.
type Transmission struct {
	Seq     uint64
	Src     *Radio
	Bits    int
	Rate    Rate
	Start   sim.Time
	End     sim.Time
	payload any
	// rangeM is the conservative hearing range for this transmission when
	// the medium has a receive cutoff; +Inf otherwise.
	rangeM float64
	// interferenceMW accumulates, per prospective receiver radio ID, the
	// worst-case interference power observed while this transmission was
	// in the air.
	interferenceMW map[int]float64
}

// Payload returns the opaque payload attached at Transmit time.
func (t *Transmission) Payload() any { return t.payload }

// Airtime returns the duration the transmission occupies the medium.
func (t *Transmission) Airtime() sim.Time { return t.End - t.Start }

// Receipt describes the outcome of a transmission at one receiver.
type Receipt struct {
	Tx      *Transmission
	RSSIdBm float64
	SINRdB  float64
	OK      bool // decoded successfully
}

// Radio is one transceiver attached to a Medium.
type Radio struct {
	ID         int
	Name       string
	Channel    int
	TxPowerDBm float64

	// Pos is the radio's current position. Treat it as read-only: moving
	// a radio must go through SetPos so the medium's spatial index stays
	// consistent.
	Pos geo.Point

	// CSThresholdDBm is the carrier-sense energy-detect threshold; the
	// medium reports busy to this radio when total in-band energy at its
	// position exceeds it.
	CSThresholdDBm float64

	// OnReceive, if non-nil, is invoked for every transmission that ends
	// while this radio is attached and not the sender, whether or not it
	// decoded (Receipt.OK tells which). Sender excluded. Receipts for one
	// transmission fire in ascending radio-ID order.
	OnReceive func(Receipt)

	medium *Medium

	// cand caches the radios that can hear this one (candidatesFor),
	// valid while candGen matches the medium's topology generation and
	// the transmit power is unchanged. The cached slice is immutable:
	// topology changes produce a new slice, so in-flight iterations over
	// an old snapshot stay safe.
	cand      []*Radio
	candGen   uint64
	candPower float64
}

// SetPos moves the radio, keeping the medium's spatial index in sync.
// Detached radios just update their position. Without a receive cutoff
// the candidate sets are position-independent, so moves neither touch
// the grid nor invalidate caches.
func (r *Radio) SetPos(p geo.Point) {
	r.Pos = p
	if m := r.medium; m != nil && m.cutoffEnabled() && m.attached(r) {
		m.grid.Move(r.ID, p)
		m.topoGen++
	}
}

// SetChannel retunes the radio, clamping to the legal range and keeping
// the medium's channel partition in sync.
func (r *Radio) SetChannel(ch int) {
	ch = clampChannel(ch)
	if ch == r.Channel {
		return
	}
	if r.medium != nil && r.medium.attached(r) {
		r.medium.channelRemove(r)
		r.Channel = ch
		r.medium.channelInsert(r)
		r.medium.topoGen++
		return
	}
	r.Channel = ch
}

func clampChannel(ch int) int {
	if ch < MinChannel {
		return MinChannel
	}
	if ch > MaxChannel {
		return MaxChannel
	}
	return ch
}

// MediumOption configures a Medium at construction time.
type MediumOption func(*Medium)

// WithRxCutoffDBm enables the spatial index: receivers whose best-case
// received power for a transmission would fall below dbm are skipped by
// delivery, interference, and energy accounting. Choose a cutoff at or
// below the noise floor (-100 dBm thermal) so each skipped contribution
// is at most noise-level. Note the error bound is per contribution: with
// k concurrent just-out-of-range interferers the skipped interference
// can sum to k times the cutoff power, so when many simultaneous
// transmissions are expected and decode outcomes near the margin matter,
// lower the cutoff by 10*log10(k) (e.g. -110 dBm for k=10). The default
// (cutoff disabled) is exact.
func WithRxCutoffDBm(dbm float64) MediumOption {
	return func(m *Medium) { m.cutoffDBm = dbm }
}

// WithGridCellM sets the spatial-index cell size in metres (default
// geo.DefaultGridCell). Smaller cells tighten range queries in very dense
// worlds at a little extra bookkeeping per move.
func WithGridCellM(meters float64) MediumOption {
	return func(m *Medium) {
		if meters > 0 {
			m.gridCell = meters
		}
	}
}

// WithFullScan disables the per-channel partition and the spatial cutoff:
// every attached radio is scanned for every transmission, in ascending ID
// order. This is the naive reference mode used by benchmarks and physics
// cross-checks; it is still fully deterministic.
func WithFullScan() MediumOption {
	return func(m *Medium) { m.fullScan = true }
}

// Medium is the shared 2.4 GHz band.
type Medium struct {
	kernel *sim.Kernel
	env    *env.Environment

	// radios maps ID -> radio for O(1) attachment checks only; every
	// iteration goes through the ordered indexes below.
	radios    map[int]*Radio
	ordered   []*Radio                 // all attached radios, ID-ascending
	byChannel [MaxChannel + 1][]*Radio // per-channel partition, ID-ascending
	grid      *geo.Grid                // spatial index over radio positions

	// active holds in-flight transmissions in ascending Seq order, so
	// energy and interference sums always accumulate identically.
	active []*Transmission

	nextID int
	seq    uint64

	cutoffDBm float64 // receive cutoff; -Inf disables the spatial skip
	gridCell  float64
	fullScan  bool

	// topoGen counts topology changes (attach, detach, move, retune);
	// per-radio candidate caches are valid only for the generation they
	// were built in.
	topoGen uint64

	// Stats
	Sent      uint64
	Delivered uint64
	Lost      uint64
}

// NewMedium creates an empty medium over the given environment.
func NewMedium(k *sim.Kernel, e *env.Environment, opts ...MediumOption) *Medium {
	m := &Medium{
		kernel:    k,
		env:       e,
		radios:    make(map[int]*Radio),
		cutoffDBm: math.Inf(-1),
		gridCell:  geo.DefaultGridCell,
	}
	for _, opt := range opts {
		opt(m)
	}
	m.grid = geo.NewGrid(m.gridCell)
	return m
}

// Kernel returns the owning simulation kernel.
func (m *Medium) Kernel() *sim.Kernel { return m.kernel }

// Env returns the propagation environment.
func (m *Medium) Env() *env.Environment { return m.env }

// RxCutoffDBm returns the configured receive cutoff (-Inf when disabled).
func (m *Medium) RxCutoffDBm() float64 { return m.cutoffDBm }

func (m *Medium) cutoffEnabled() bool {
	return !m.fullScan && !math.IsInf(m.cutoffDBm, -1)
}

func (m *Medium) attached(r *Radio) bool { return m.radios[r.ID] == r }

// NewRadio creates, attaches and returns a radio. Channel is clamped to
// the legal range.
func (m *Medium) NewRadio(name string, pos geo.Point, channel int, txPowerDBm float64) *Radio {
	m.nextID++
	r := &Radio{
		ID:             m.nextID,
		Name:           name,
		Pos:            pos,
		Channel:        clampChannel(channel),
		TxPowerDBm:     txPowerDBm,
		CSThresholdDBm: -82,
		medium:         m,
	}
	m.radios[r.ID] = r
	m.ordered = append(m.ordered, r) // IDs are monotonic: stays sorted
	m.channelInsert(r)
	m.grid.Insert(r.ID, pos)
	m.topoGen++
	return r
}

func (m *Medium) channelInsert(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	ids = append(ids, nil)
	copy(ids[i+1:], ids[i:])
	ids[i] = r
	m.byChannel[r.Channel] = ids
}

func (m *Medium) channelRemove(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	if i < len(ids) && ids[i] == r {
		m.byChannel[r.Channel] = append(ids[:i], ids[i+1:]...)
	}
}

// Detach removes a radio from the medium; in-flight transmissions to it
// are not delivered.
func (m *Medium) Detach(r *Radio) {
	if !m.attached(r) {
		return
	}
	delete(m.radios, r.ID)
	i := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].ID >= r.ID })
	if i < len(m.ordered) && m.ordered[i] == r {
		m.ordered = append(m.ordered[:i], m.ordered[i+1:]...)
	}
	m.channelRemove(r)
	m.grid.Remove(r.ID)
	m.topoGen++
}

// Radios returns the number of attached radios.
func (m *Medium) Radios() int { return len(m.ordered) }

// hearingRange returns the conservative maximum distance at which a
// transmission from r can still reach the receive cutoff, or +Inf when
// the cutoff is disabled.
func (m *Medium) hearingRange(r *Radio) float64 {
	if !m.cutoffEnabled() {
		return math.Inf(1)
	}
	return m.env.MaxRangeForCutoff(r.TxPowerDBm, m.cutoffDBm)
}

// candidatesFor returns every attached radio that could receive energy
// from src — spectrally overlapping channel and, when the cutoff is
// enabled, within src's conservative hearing range — excluding src
// itself, in ascending radio-ID order.
//
// The result is cached on src and reused until the medium's topology
// changes (attach, detach, move, retune) or src's transmit power does.
// Callers must treat the returned slice as immutable; it is safe to keep
// iterating across a topology change mid-delivery, because rebuilds
// allocate a fresh slice.
func (m *Medium) candidatesFor(src *Radio) []*Radio {
	if src.cand != nil && src.candGen == m.topoGen && src.candPower == src.TxPowerDBm {
		return src.cand
	}
	out := m.buildCandidates(src)
	src.cand, src.candGen, src.candPower = out, m.topoGen, src.TxPowerDBm
	return out
}

func (m *Medium) buildCandidates(src *Radio) []*Radio {
	dst := make([]*Radio, 0, 16)
	if m.fullScan {
		for _, r := range m.ordered {
			if r != src {
				dst = append(dst, r)
			}
		}
		return dst
	}
	lo := src.Channel - (maxOverlapDistance - 1)
	hi := src.Channel + (maxOverlapDistance - 1)
	if lo < MinChannel {
		lo = MinChannel
	}
	if hi > MaxChannel {
		hi = MaxChannel
	}
	if m.cutoffEnabled() {
		rangeM := m.hearingRange(src)
		m.grid.VisitCircle(src.Pos, rangeM, func(id int, _ geo.Point) {
			r := m.radios[id]
			if r == src || r.Channel < lo || r.Channel > hi {
				return
			}
			dst = append(dst, r)
		})
		// The grid visits cell-major; restore the global ID order.
		sort.Sort(byID(dst))
		return dst
	}
	total := 0
	for ch := lo; ch <= hi; ch++ {
		total += len(m.byChannel[ch])
	}
	if total*3 >= len(m.ordered)*2 {
		// The overlap window holds most of the band: a filtered scan of
		// the global ID order beats a multi-way merge.
		for _, r := range m.ordered {
			if r != src && r.Channel >= lo && r.Channel <= hi {
				dst = append(dst, r)
			}
		}
		return dst
	}
	// Sparse window: merge the (already ID-sorted) per-channel slices,
	// skipping src.
	var heads [2*maxOverlapDistance - 1][]*Radio
	n := 0
	for ch := lo; ch <= hi; ch++ {
		if s := m.byChannel[ch]; len(s) > 0 {
			heads[n] = s
			n++
		}
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if len(heads[i]) == 0 {
				continue
			}
			if best < 0 || heads[i][0].ID < heads[best][0].ID {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		if r := heads[best][0]; r != src {
			dst = append(dst, r)
		}
		heads[best] = heads[best][1:]
	}
}

// byID sorts radios by ascending ID.
type byID []*Radio

func (s byID) Len() int           { return len(s) }
func (s byID) Less(i, j int) bool { return s[i].ID < s[j].ID }
func (s byID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// EnergyAtDBm returns the total in-band energy a radio currently senses:
// the channel-overlap-weighted sum of all active transmissions' received
// power at the radio's position, plus the noise floor. Transmissions are
// summed in ascending sequence order, so the floating-point result is
// identical across runs.
func (m *Medium) EnergyAtDBm(r *Radio) float64 {
	total := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	now := m.kernel.Now()
	for _, tx := range m.active {
		if tx.Src.ID == r.ID {
			continue
		}
		if now-tx.Start < SensingDelay {
			continue // within the vulnerable window: not yet detectable
		}
		ov := ChannelOverlap(tx.Src.Channel, r.Channel)
		if ov == 0 {
			continue
		}
		if tx.Src.Pos.Dist(r.Pos) > tx.rangeM {
			continue // below the receive cutoff by construction
		}
		rx := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, r.Pos)
		total += env.DBmToMilliwatts(rx) * ov
	}
	return env.MilliwattsToDBm(total)
}

// Busy reports whether the radio's carrier sense sees the medium busy.
func (m *Medium) Busy(r *Radio) bool {
	return m.EnergyAtDBm(r) > r.CSThresholdDBm
}

// SNRAtDBm returns the signal-to-noise ratio (no interference) a receiver
// would see for a transmission from src, used for rate selection.
func (m *Medium) SNRAtDBm(src, dst *Radio) float64 {
	rx := m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
	return rx - m.env.NoiseFloorDBm()
}

// MeasureRSSI returns the received power at dst for a probe from src —
// the primitive on which RSSI ranging is built.
func (m *Medium) MeasureRSSI(src, dst *Radio) float64 {
	return m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
}

// ErrZeroBits is returned by Transmit for an empty frame.
var ErrZeroBits = errors.New("radio: transmission must carry at least one bit")

// Transmit puts a frame on the air from r. The frame occupies the medium
// for bits/rate seconds; when it ends, every other attached radio's
// OnReceive fires with a Receipt, in ascending radio-ID order. The
// payload is carried opaquely.
func (m *Medium) Transmit(r *Radio, bits int, rate Rate, payload any) (*Transmission, error) {
	if bits <= 0 {
		return nil, ErrZeroBits
	}
	if !m.attached(r) {
		return nil, fmt.Errorf("radio: %s not attached", r.Name)
	}
	airSeconds := float64(bits) / (rate.Mbps * 1e6)
	now := m.kernel.Now()
	m.seq++
	tx := &Transmission{
		Seq:            m.seq,
		Src:            r,
		Bits:           bits,
		Rate:           rate,
		Start:          now,
		End:            now + sim.Time(airSeconds*float64(sim.Second)),
		payload:        payload,
		rangeM:         m.hearingRange(r),
		interferenceMW: make(map[int]float64),
	}
	// Record mutual interference with all currently active transmissions,
	// oldest first.
	hearers := m.candidatesFor(r)
	for _, other := range m.active {
		m.recordInterference(tx, other, m.candidatesFor(other.Src))
		m.recordInterference(other, tx, hearers)
	}
	m.active = append(m.active, tx) // Seq is monotonic: stays sorted
	m.Sent++
	m.kernel.Schedule(tx.End-now, "radio.txEnd", func() { m.finish(tx) })
	return tx, nil
}

// recordInterference adds other's power into victim's per-receiver
// interference ledger. hearers is the candidate set for other.Src (the
// radios that can hear the interfering emission), in ascending ID order.
func (m *Medium) recordInterference(victim, other *Transmission, hearers []*Radio) {
	for _, rx := range hearers {
		if rx.ID == victim.Src.ID {
			continue
		}
		ov := ChannelOverlap(other.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		p := env.DBmToMilliwatts(m.env.ReceivedPowerDBm(other.Src.TxPowerDBm, other.Src.Pos, rx.Pos)) * ov
		victim.interferenceMW[rx.ID] += p
	}
}

// finish delivers a completed transmission to every radio that could hear
// it, in ascending radio-ID order.
func (m *Medium) finish(tx *Transmission) {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	noiseMW := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	// The candidate snapshot is immutable: OnReceive callbacks may
	// transmit or attach/detach radios without disturbing this delivery
	// round (detached receivers are re-checked below).
	receivers := m.candidatesFor(tx.Src)
	for _, rx := range receivers {
		if rx.OnReceive == nil || !m.attached(rx) {
			continue
		}
		ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		rssi := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, rx.Pos)
		sigMW := env.DBmToMilliwatts(rssi) * ov
		intMW := tx.interferenceMW[rx.ID]
		sinr := 10 * math.Log10(sigMW/(noiseMW+intMW))
		ok := sinr >= tx.Rate.MinSINRdB
		if ok {
			m.Delivered++
		} else {
			m.Lost++
		}
		rx.OnReceive(Receipt{Tx: tx, RSSIdBm: rssi, SINRdB: sinr, OK: ok})
	}
}

// ActiveTransmissions returns the number of frames currently in the air.
func (m *Medium) ActiveTransmissions() int { return len(m.active) }

// EstimateDistance performs RSSI ranging from src to dst: it measures the
// received power and inverts the free-space-with-exponent model. Walls and
// shadowing corrupt the estimate, reproducing experiment C8.
func (m *Medium) EstimateDistance(src, dst *Radio) float64 {
	rssi := m.MeasureRSSI(src, dst)
	return m.env.EstimateDistanceFromRSSI(src.TxPowerDBm, rssi)
}
