// Package radio simulates the physical wireless layer of the Aroma
// testbed: 2.4 GHz ISM-band transceivers (the paper's "2.4 GHz wireless
// LAN PCMCIA card") on a shared medium.
//
// The model captures the environment- and physical-layer phenomena the
// paper calls out: limited bandwidth, ranging by received signal strength,
// co- and adjacent-channel interference, and congestion collapse as the
// concentration of devices in the band grows (the paper: "the effect of a
// high concentration of these devices needs to be studied").
//
// A Medium owns the set of attached Radios and the in-flight
// Transmissions. Delivery is SINR-based: a frame is decoded by a receiver
// if the signal-to-interference-plus-noise ratio stays above the threshold
// for the transmission's bit rate, where interference sums the power of
// every time-overlapping transmission weighted by spectral channel
// overlap.
//
// # Determinism
//
// The medium never iterates a Go map on the simulation's hot paths.
// Receipts, interference accounting, and energy sums are produced in a
// fixed order — receivers in ascending radio-ID order, in-flight
// transmissions in ascending sequence order — so a run is bit-identical
// given the same kernel seed. Model code that moves a radio must call
// Radio.SetPos (not write Pos directly) so the spatial index stays
// consistent; likewise SetChannel for channel hops.
//
// # Scaling
//
// The medium is indexed two ways so dense worlds do not pay O(radios) per
// transmission for receivers that cannot possibly hear it:
//
//   - a per-channel partition: only radios whose channel spectrally
//     overlaps the transmitter's (within ChannelOverlap's 5-channel
//     cutoff) are scanned;
//   - an optional spatial grid with a received-power cutoff
//     (WithRxCutoffDBm): radios beyond the conservative maximum range at
//     which the cutoff could still be met are skipped entirely.
//
// Candidate sets are cached per radio with cell-granular invalidation,
// so mobile worlds do not pay a global cache wipe per move: a cache
// records the grid cells its hearing-range circle covers (a geo.Cover)
// and revalidates against their per-cell generations. Only a move that
// crosses a cell boundary — or an attach, detach, or retune within the
// cache's coverage — forces a rebuild; a move inside one cell is free.
// Retunes invalidate only caches whose 5-channel overlap window touches
// the old or new channel (per-channel generation counters), not the
// whole world. The cached set is a cell-conservative superset of the
// hearing circle; delivery, interference, and energy accounting apply
// the exact range check at use time, so the physics is identical to a
// full rebuild per move (WithGlobalInvalidation, the benchmark
// reference) while mobility stays cheap.
//
// WithFullScan restores the naive scan of every attached radio (still in
// deterministic ID order) as a reference mode for benchmarks and physics
// cross-checks.
package radio

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// Channel numbering follows 802.11b North America: 1..11, 5 MHz apart,
// 22 MHz wide, so channels closer than 5 apart partially overlap.
const (
	MinChannel = 1
	MaxChannel = 11
)

// SensingDelay is the time after a transmission starts before other
// stations' carrier sense can detect it (propagation plus energy-detect
// integration). Transmissions younger than this are invisible to
// EnergyAtDBm/Busy, which creates the CSMA vulnerable window: stations
// that decide to transmit within the same window collide, exactly as in
// real 802.11 DCF.
const SensingDelay = 15 * sim.Microsecond

// Rate is one step of the 802.11b-era rate set.
type Rate struct {
	Mbps      float64
	MinSINRdB float64 // decode threshold
}

// Rates is the available rate set, ascending. The thresholds follow
// typical 802.11b receiver sensitivity ladders.
var Rates = []Rate{
	{1, 4},
	{2, 7},
	{5.5, 9},
	{11, 12},
}

// PickRate returns the fastest rate whose decode threshold is at or below
// the given SINR, or the base rate if none qualifies (the sender will try
// and likely fail, as real rate-fallback schemes do on stale state).
func PickRate(sinrDB float64) Rate {
	best := Rates[0]
	for _, r := range Rates {
		if sinrDB >= r.MinSINRdB {
			best = r
		}
	}
	return best
}

// maxOverlapDistance is the channel separation at and beyond which
// ChannelOverlap is zero; the per-channel index scans only channels
// strictly closer than this.
const maxOverlapDistance = 5

// ChannelOverlap returns the fraction of transmit power from a sender on
// channel a that lands in a receiver's filter on channel b. Values follow
// the measured 802.11b spectral-mask overlap ladder.
func ChannelOverlap(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	switch d {
	case 0:
		return 1.0
	case 1:
		return 0.7272
	case 2:
		return 0.2714
	case 3:
		return 0.0375
	case 4:
		return 0.0054
	default:
		return 0
	}
}

// Transmission is one frame in flight on the medium.
type Transmission struct {
	Seq     uint64
	Src     *Radio
	Bits    int
	Rate    Rate
	Start   sim.Time
	End     sim.Time
	payload any
	// range2 is the squared conservative hearing range for this
	// transmission when the medium has a receive cutoff; +Inf otherwise.
	// Squared so the hot-path checks compare against squared distances
	// without a square root.
	range2 float64
	// interferenceMW accumulates, per prospective receiver radio ID, the
	// worst-case interference power observed while this transmission was
	// in the air.
	interferenceMW map[int]float64
}

// Payload returns the opaque payload attached at Transmit time.
func (t *Transmission) Payload() any { return t.payload }

// Airtime returns the duration the transmission occupies the medium.
func (t *Transmission) Airtime() sim.Time { return t.End - t.Start }

// Receipt describes the outcome of a transmission at one receiver.
type Receipt struct {
	Tx      *Transmission
	RSSIdBm float64
	SINRdB  float64
	OK      bool // decoded successfully
}

// Radio is one transceiver attached to a Medium.
type Radio struct {
	ID         int
	Name       string
	Channel    int
	TxPowerDBm float64

	// Pos is the radio's current position. Treat it as read-only: moving
	// a radio must go through SetPos so the medium's spatial index stays
	// consistent.
	Pos geo.Point

	// CSThresholdDBm is the carrier-sense energy-detect threshold; the
	// medium reports busy to this radio when total in-band energy at its
	// position exceeds it.
	CSThresholdDBm float64

	// OnReceive, if non-nil, is invoked for every transmission that ends
	// while this radio is attached and not the sender, whether or not it
	// decoded (Receipt.OK tells which). Sender excluded. Receipts for one
	// transmission fire in ascending radio-ID order.
	OnReceive func(Receipt)

	medium *Medium

	// cand caches the radios that could hear this one (candidatesFor).
	// The cached slice is immutable: rebuilds allocate a fresh slice, so
	// in-flight iterations over an old snapshot stay safe. Validity is
	// mode-dependent (candValid): full-scan and global-invalidation modes
	// compare candGen against the medium's coarse topology generation;
	// the indexed modes compare the channel-window generation sum
	// (candChanSum, for candChannel's overlap window) and — with the
	// spatial cutoff — check candCover, whose dirty flag the grid sets
	// when a covered cell's membership changes. candPower guards the
	// hearing range in all modes.
	cand        []*Radio
	candGen     uint64
	candPower   float64
	candChannel int
	candChanSum uint64
	candCover   *geo.Cover
}

// SetPos moves the radio, keeping the medium's spatial index in sync.
// A call with the radio's current position is a no-op: it neither
// touches the grid nor bumps any generation, so movers may re-apply a
// sampled position freely. Detached radios just update their position.
// Without a receive cutoff the candidate sets are position-independent,
// so moves neither touch the grid nor invalidate caches. With the
// cutoff, only a move that crosses a grid-cell boundary invalidates
// caches — and only those whose coverage includes the source or
// destination cell (geo.Grid's per-cell generations).
func (r *Radio) SetPos(p geo.Point) {
	if p == r.Pos {
		return
	}
	r.Pos = p
	if m := r.medium; m != nil && m.cutoffEnabled() && m.attached(r) {
		m.grid.Move(r.ID, p)
		if m.globalInval {
			m.topoGen++
		}
	}
}

// SetChannel retunes the radio, clamping to the legal range and keeping
// the medium's channel partition in sync. A retune invalidates only the
// candidate caches whose 5-channel overlap window touches the old or new
// channel; radios spectrally out of reach keep their caches.
func (r *Radio) SetChannel(ch int) {
	ch = clampChannel(ch)
	if ch == r.Channel {
		return
	}
	if m := r.medium; m != nil && m.attached(r) {
		m.channelRemove(r)
		old := r.Channel
		r.Channel = ch
		m.channelInsert(r)
		if m.globalInval {
			m.topoGen++
		} else {
			m.chanGen[old]++
			m.chanGen[ch]++
		}
		return
	}
	r.Channel = ch
}

func clampChannel(ch int) int {
	if ch < MinChannel {
		return MinChannel
	}
	if ch > MaxChannel {
		return MaxChannel
	}
	return ch
}

// MediumOption configures a Medium at construction time.
type MediumOption func(*Medium)

// WithRxCutoffDBm enables the spatial index: receivers whose best-case
// received power for a transmission would fall below dbm are skipped by
// delivery, interference, and energy accounting. Choose a cutoff at or
// below the noise floor (-100 dBm thermal) so each skipped contribution
// is at most noise-level. Note the error bound is per contribution: with
// k concurrent just-out-of-range interferers the skipped interference
// can sum to k times the cutoff power, so when many simultaneous
// transmissions are expected and decode outcomes near the margin matter,
// lower the cutoff by 10*log10(k) (e.g. -110 dBm for k=10). The default
// (cutoff disabled) is exact.
func WithRxCutoffDBm(dbm float64) MediumOption {
	return func(m *Medium) { m.cutoffDBm = dbm }
}

// WithGridCellM sets the spatial-index cell size in metres (default
// geo.DefaultGridCell). Smaller cells tighten range queries in very dense
// worlds at a little extra bookkeeping per move.
func WithGridCellM(meters float64) MediumOption {
	return func(m *Medium) {
		if meters > 0 {
			m.gridCell = meters
		}
	}
}

// WithFullScan disables the per-channel partition and the spatial cutoff:
// every attached radio is scanned for every transmission, in ascending ID
// order. This is the naive reference mode used by benchmarks and physics
// cross-checks; it is still fully deterministic.
func WithFullScan() MediumOption {
	return func(m *Medium) { m.fullScan = true }
}

// WithGlobalInvalidation makes every topology change — including every
// cutoff-enabled move and every retune — bump one medium-wide generation
// that wipes all candidate caches, instead of the default cell- and
// channel-granular invalidation. Physics and digests are identical to
// the default; only rebuild frequency differs. This is the reference
// arm for the BenchmarkMediumDenseMobile* comparison and for
// cross-checking the granular invalidation, not a mode to run worlds in.
func WithGlobalInvalidation() MediumOption {
	return func(m *Medium) { m.globalInval = true }
}

// Medium is the shared 2.4 GHz band.
type Medium struct {
	kernel *sim.Kernel
	env    *env.Environment

	// radios maps ID -> radio for O(1) attachment checks only; every
	// iteration goes through the ordered indexes below.
	radios    map[int]*Radio
	ordered   []*Radio                 // all attached radios, ID-ascending
	byChannel [MaxChannel + 1][]*Radio // per-channel partition, ID-ascending
	grid      *geo.Grid                // spatial index over radio positions

	// active holds in-flight transmissions in ascending Seq order, so
	// energy and interference sums always accumulate identically.
	active []*Transmission

	nextID int
	seq    uint64

	cutoffDBm   float64 // receive cutoff; -Inf disables the spatial skip
	gridCell    float64
	fullScan    bool
	globalInval bool

	// topoGen counts membership changes (attach, detach) — the only
	// events that invalidate full-scan candidate caches. In
	// WithGlobalInvalidation mode it additionally counts every move and
	// retune, restoring the coarse wipe-the-world behaviour.
	topoGen uint64

	// chanGen counts, per channel, the attaches, detaches, and retunes
	// touching that channel. A candidate cache built for channel c is
	// invalidated by a change to the generation sum over c's 5-channel
	// overlap window — and only by that, so a retune on the far side of
	// the band leaves it untouched.
	chanGen [MaxChannel + 1]uint64

	// Stats
	Sent      uint64
	Delivered uint64
	Lost      uint64
}

// NewMedium creates an empty medium over the given environment.
func NewMedium(k *sim.Kernel, e *env.Environment, opts ...MediumOption) *Medium {
	m := &Medium{
		kernel:    k,
		env:       e,
		radios:    make(map[int]*Radio),
		cutoffDBm: math.Inf(-1),
		gridCell:  geo.DefaultGridCell,
	}
	for _, opt := range opts {
		opt(m)
	}
	m.grid = geo.NewGrid(m.gridCell)
	return m
}

// Kernel returns the owning simulation kernel.
func (m *Medium) Kernel() *sim.Kernel { return m.kernel }

// Env returns the propagation environment.
func (m *Medium) Env() *env.Environment { return m.env }

// RxCutoffDBm returns the configured receive cutoff (-Inf when disabled).
func (m *Medium) RxCutoffDBm() float64 { return m.cutoffDBm }

func (m *Medium) cutoffEnabled() bool {
	return !m.fullScan && !math.IsInf(m.cutoffDBm, -1)
}

func (m *Medium) attached(r *Radio) bool { return m.radios[r.ID] == r }

// NewRadio creates, attaches and returns a radio. Channel is clamped to
// the legal range.
func (m *Medium) NewRadio(name string, pos geo.Point, channel int, txPowerDBm float64) *Radio {
	m.nextID++
	r := &Radio{
		ID:             m.nextID,
		Name:           name,
		Pos:            pos,
		Channel:        clampChannel(channel),
		TxPowerDBm:     txPowerDBm,
		CSThresholdDBm: -82,
		medium:         m,
	}
	m.radios[r.ID] = r
	m.ordered = append(m.ordered, r) // IDs are monotonic: stays sorted
	m.channelInsert(r)
	m.grid.Insert(r.ID, pos) // bumps the destination cell's generation
	m.topoGen++
	m.chanGen[r.Channel]++
	return r
}

func (m *Medium) channelInsert(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	ids = append(ids, nil)
	copy(ids[i+1:], ids[i:])
	ids[i] = r
	m.byChannel[r.Channel] = ids
}

func (m *Medium) channelRemove(r *Radio) {
	ids := m.byChannel[r.Channel]
	i := sort.Search(len(ids), func(i int) bool { return ids[i].ID >= r.ID })
	if i < len(ids) && ids[i] == r {
		m.byChannel[r.Channel] = append(ids[:i], ids[i+1:]...)
	}
}

// Detach removes a radio from the medium; in-flight transmissions to it
// are not delivered.
func (m *Medium) Detach(r *Radio) {
	if !m.attached(r) {
		return
	}
	delete(m.radios, r.ID)
	i := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].ID >= r.ID })
	if i < len(m.ordered) && m.ordered[i] == r {
		m.ordered = append(m.ordered[:i], m.ordered[i+1:]...)
	}
	m.channelRemove(r)
	m.grid.Remove(r.ID) // bumps the vacated cell's generation
	m.grid.Release(r.candCover)
	r.cand, r.candCover = nil, nil
	m.topoGen++
	m.chanGen[r.Channel]++
}

// Radios returns the number of attached radios.
func (m *Medium) Radios() int { return len(m.ordered) }

// hearingRange returns the conservative maximum distance at which a
// transmission from r can still reach the receive cutoff, or +Inf when
// the cutoff is disabled.
func (m *Medium) hearingRange(r *Radio) float64 {
	if !m.cutoffEnabled() {
		return math.Inf(1)
	}
	return m.env.MaxRangeForCutoff(r.TxPowerDBm, m.cutoffDBm)
}

// overlapWindow returns the inclusive channel range spectrally coupled
// to ch (nonzero ChannelOverlap), clamped to the legal band.
func overlapWindow(ch int) (lo, hi int) {
	lo, hi = ch-(maxOverlapDistance-1), ch+(maxOverlapDistance-1)
	if lo < MinChannel {
		lo = MinChannel
	}
	if hi > MaxChannel {
		hi = MaxChannel
	}
	return lo, hi
}

// chanGenSum sums the per-channel generations over [lo, hi]. Generations
// only grow, so the sum changes iff any channel in the window changed.
func (m *Medium) chanGenSum(lo, hi int) uint64 {
	var s uint64
	for ch := lo; ch <= hi; ch++ {
		s += m.chanGen[ch]
	}
	return s
}

// candidatesFor returns every attached radio that could receive energy
// from src — spectrally overlapping channel and, when the cutoff is
// enabled, within the grid cells covering src's hearing-range circle —
// excluding src itself, in ascending radio-ID order. With the cutoff the
// set is a cell-conservative superset of the hearing circle: use sites
// apply the exact per-transmission range check themselves.
//
// The result is cached on src and revalidated per call (candValid);
// rebuilds happen only when a relevant slice of the topology changed.
// Callers must treat the returned slice as immutable; it is safe to keep
// iterating across a topology change mid-delivery, because rebuilds
// allocate a fresh slice.
func (m *Medium) candidatesFor(src *Radio) []*Radio {
	if src.cand != nil && src.candPower == src.TxPowerDBm && m.candValid(src) {
		return src.cand
	}
	out := m.buildCandidates(src)
	src.cand, src.candPower = out, src.TxPowerDBm
	return out
}

// candValid reports whether src's cached candidate set still describes
// the medium, per the active indexing mode.
func (m *Medium) candValid(src *Radio) bool {
	if m.fullScan || m.globalInval {
		return src.candGen == m.topoGen
	}
	if src.Channel != src.candChannel {
		return false
	}
	lo, hi := overlapWindow(src.Channel)
	if src.candChanSum != m.chanGenSum(lo, hi) {
		return false
	}
	if !m.cutoffEnabled() {
		return true
	}
	return m.grid.CoverValid(src.candCover, src.Pos)
}

func (m *Medium) buildCandidates(src *Radio) []*Radio {
	dst := make([]*Radio, 0, 16)
	if m.fullScan {
		for _, r := range m.ordered {
			if r != src {
				dst = append(dst, r)
			}
		}
		src.candGen = m.topoGen
		return dst
	}
	src.candGen = m.topoGen
	src.candChannel = src.Channel
	lo, hi := overlapWindow(src.Channel)
	src.candChanSum = m.chanGenSum(lo, hi)
	if m.cutoffEnabled() {
		rangeM := m.hearingRange(src)
		collect := func(id int, _ geo.Point) {
			r := m.radios[id]
			if r == src || r.Channel < lo || r.Channel > hi {
				return
			}
			dst = append(dst, r)
		}
		if m.globalInval {
			// Reference mode: exact circle at build time, rebuilt on
			// every move — the pre-cell-granular behaviour.
			m.grid.VisitCircle(src.Pos, rangeM, collect)
		} else {
			cover := src.candCover
			if m.grid.Anchored(cover, src.Pos, rangeM) {
				// Same cell box: reuse the registration, just re-walk.
				m.grid.Refresh(cover)
			} else {
				m.grid.Release(cover)
				cover = m.grid.CoverFor(src.Pos, rangeM)
				src.candCover = cover
			}
			m.grid.VisitCover(cover, collect)
			if !m.attached(src) {
				// A detached radio can rebuild once more while its last
				// transmission is in flight; don't leave a registered
				// cover behind that nothing would ever release.
				m.grid.Release(cover)
				src.candCover = nil
			}
		}
		// The grid visits cell-major; restore the global ID order.
		sort.Sort(byID(dst))
		return dst
	}
	total := 0
	for ch := lo; ch <= hi; ch++ {
		total += len(m.byChannel[ch])
	}
	if total*3 >= len(m.ordered)*2 {
		// The overlap window holds most of the band: a filtered scan of
		// the global ID order beats a multi-way merge.
		for _, r := range m.ordered {
			if r != src && r.Channel >= lo && r.Channel <= hi {
				dst = append(dst, r)
			}
		}
		return dst
	}
	// Sparse window: merge the (already ID-sorted) per-channel slices,
	// skipping src.
	var heads [2*maxOverlapDistance - 1][]*Radio
	n := 0
	for ch := lo; ch <= hi; ch++ {
		if s := m.byChannel[ch]; len(s) > 0 {
			heads[n] = s
			n++
		}
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			if len(heads[i]) == 0 {
				continue
			}
			if best < 0 || heads[i][0].ID < heads[best][0].ID {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		if r := heads[best][0]; r != src {
			dst = append(dst, r)
		}
		heads[best] = heads[best][1:]
	}
}

// distSq returns the squared Euclidean distance between two points; the
// hot paths compare it against squared ranges to avoid the square root.
func distSq(a, b geo.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// squared returns v*v, preserving +Inf (the disabled-cutoff range).
func squared(v float64) float64 { return v * v }

// byID sorts radios by ascending ID.
type byID []*Radio

func (s byID) Len() int           { return len(s) }
func (s byID) Less(i, j int) bool { return s[i].ID < s[j].ID }
func (s byID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// EnergyAtDBm returns the total in-band energy a radio currently senses:
// the channel-overlap-weighted sum of all active transmissions' received
// power at the radio's position, plus the noise floor. Transmissions are
// summed in ascending sequence order, so the floating-point result is
// identical across runs.
func (m *Medium) EnergyAtDBm(r *Radio) float64 {
	total := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	now := m.kernel.Now()
	for _, tx := range m.active {
		if tx.Src.ID == r.ID {
			continue
		}
		if now-tx.Start < SensingDelay {
			continue // within the vulnerable window: not yet detectable
		}
		ov := ChannelOverlap(tx.Src.Channel, r.Channel)
		if ov == 0 {
			continue
		}
		if distSq(tx.Src.Pos, r.Pos) > tx.range2 {
			continue // below the receive cutoff by construction
		}
		rx := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, r.Pos)
		total += env.DBmToMilliwatts(rx) * ov
	}
	return env.MilliwattsToDBm(total)
}

// Busy reports whether the radio's carrier sense sees the medium busy.
func (m *Medium) Busy(r *Radio) bool {
	return m.EnergyAtDBm(r) > r.CSThresholdDBm
}

// SNRAtDBm returns the signal-to-noise ratio (no interference) a receiver
// would see for a transmission from src, used for rate selection.
func (m *Medium) SNRAtDBm(src, dst *Radio) float64 {
	rx := m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
	return rx - m.env.NoiseFloorDBm()
}

// MeasureRSSI returns the received power at dst for a probe from src —
// the primitive on which RSSI ranging is built.
func (m *Medium) MeasureRSSI(src, dst *Radio) float64 {
	return m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
}

// ErrZeroBits is returned by Transmit for an empty frame.
var ErrZeroBits = errors.New("radio: transmission must carry at least one bit")

// Transmit puts a frame on the air from r. The frame occupies the medium
// for bits/rate seconds; when it ends, every other attached radio's
// OnReceive fires with a Receipt, in ascending radio-ID order. The
// payload is carried opaquely.
func (m *Medium) Transmit(r *Radio, bits int, rate Rate, payload any) (*Transmission, error) {
	if bits <= 0 {
		return nil, ErrZeroBits
	}
	if !m.attached(r) {
		return nil, fmt.Errorf("radio: %s not attached", r.Name)
	}
	airSeconds := float64(bits) / (rate.Mbps * 1e6)
	now := m.kernel.Now()
	m.seq++
	tx := &Transmission{
		Seq:            m.seq,
		Src:            r,
		Bits:           bits,
		Rate:           rate,
		Start:          now,
		End:            now + sim.Time(airSeconds*float64(sim.Second)),
		payload:        payload,
		range2:         squared(m.hearingRange(r)),
		interferenceMW: make(map[int]float64),
	}
	// Record mutual interference with all currently active transmissions,
	// oldest first.
	hearers := m.candidatesFor(r)
	for _, other := range m.active {
		m.recordInterference(tx, other, m.candidatesFor(other.Src))
		m.recordInterference(other, tx, hearers)
	}
	m.active = append(m.active, tx) // Seq is monotonic: stays sorted
	m.Sent++
	m.kernel.Schedule(tx.End-now, "radio.txEnd", func() { m.finish(tx) })
	return tx, nil
}

// recordInterference adds other's power into victim's per-receiver
// interference ledger. hearers is the candidate set for other.Src (the
// radios that could hear the interfering emission), in ascending ID
// order; receivers beyond other's exact hearing range are skipped here,
// since the candidate set is only cell-conservative.
func (m *Medium) recordInterference(victim, other *Transmission, hearers []*Radio) {
	for _, rx := range hearers {
		if rx.ID == victim.Src.ID {
			continue
		}
		ov := ChannelOverlap(other.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		if distSq(other.Src.Pos, rx.Pos) > other.range2 {
			continue // below the receive cutoff by construction
		}
		p := env.DBmToMilliwatts(m.env.ReceivedPowerDBm(other.Src.TxPowerDBm, other.Src.Pos, rx.Pos)) * ov
		victim.interferenceMW[rx.ID] += p
	}
}

// finish delivers a completed transmission to every radio that could hear
// it, in ascending radio-ID order.
func (m *Medium) finish(tx *Transmission) {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	noiseMW := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	// The candidate snapshot is immutable: OnReceive callbacks may
	// transmit or attach/detach radios without disturbing this delivery
	// round (detached receivers are re-checked below). The exact range
	// decision is likewise frozen here, before any callback runs: a
	// callback that moves a radio must not change this round's delivery
	// membership, or the cell-conservative superset and a rebuilt exact
	// circle would disagree.
	receivers := m.candidatesFor(tx.Src)
	if !math.IsInf(tx.range2, 1) {
		inRange := make([]*Radio, 0, len(receivers))
		for _, rx := range receivers {
			if distSq(tx.Src.Pos, rx.Pos) <= tx.range2 {
				inRange = append(inRange, rx)
			}
		}
		receivers = inRange
	}
	for _, rx := range receivers {
		if rx.OnReceive == nil || !m.attached(rx) {
			continue
		}
		ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		rssi := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, rx.Pos)
		sigMW := env.DBmToMilliwatts(rssi) * ov
		intMW := tx.interferenceMW[rx.ID]
		sinr := 10 * math.Log10(sigMW/(noiseMW+intMW))
		ok := sinr >= tx.Rate.MinSINRdB
		if ok {
			m.Delivered++
		} else {
			m.Lost++
		}
		rx.OnReceive(Receipt{Tx: tx, RSSIdBm: rssi, SINRdB: sinr, OK: ok})
	}
}

// ActiveTransmissions returns the number of frames currently in the air.
func (m *Medium) ActiveTransmissions() int { return len(m.active) }

// EstimateDistance performs RSSI ranging from src to dst: it measures the
// received power and inverts the free-space-with-exponent model. Walls and
// shadowing corrupt the estimate, reproducing experiment C8.
func (m *Medium) EstimateDistance(src, dst *Radio) float64 {
	rssi := m.MeasureRSSI(src, dst)
	return m.env.EstimateDistanceFromRSSI(src.TxPowerDBm, rssi)
}
