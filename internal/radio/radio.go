// Package radio simulates the physical wireless layer of the Aroma
// testbed: 2.4 GHz ISM-band transceivers (the paper's "2.4 GHz wireless
// LAN PCMCIA card") on a shared medium.
//
// The model captures the environment- and physical-layer phenomena the
// paper calls out: limited bandwidth, ranging by received signal strength,
// co- and adjacent-channel interference, and congestion collapse as the
// concentration of devices in the band grows (the paper: "the effect of a
// high concentration of these devices needs to be studied").
//
// A Medium owns the set of attached Radios and the in-flight
// Transmissions. Delivery is SINR-based: a frame is decoded by a receiver
// if the signal-to-interference-plus-noise ratio stays above the threshold
// for the transmission's bit rate, where interference sums the power of
// every time-overlapping transmission weighted by spectral channel
// overlap.
package radio

import (
	"errors"
	"fmt"
	"math"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// Channel numbering follows 802.11b North America: 1..11, 5 MHz apart,
// 22 MHz wide, so channels closer than 5 apart partially overlap.
const (
	MinChannel = 1
	MaxChannel = 11
)

// SensingDelay is the time after a transmission starts before other
// stations' carrier sense can detect it (propagation plus energy-detect
// integration). Transmissions younger than this are invisible to
// EnergyAtDBm/Busy, which creates the CSMA vulnerable window: stations
// that decide to transmit within the same window collide, exactly as in
// real 802.11 DCF.
const SensingDelay = 15 * sim.Microsecond

// Rate is one step of the 802.11b-era rate set.
type Rate struct {
	Mbps      float64
	MinSINRdB float64 // decode threshold
}

// Rates is the available rate set, ascending. The thresholds follow
// typical 802.11b receiver sensitivity ladders.
var Rates = []Rate{
	{1, 4},
	{2, 7},
	{5.5, 9},
	{11, 12},
}

// PickRate returns the fastest rate whose decode threshold is at or below
// the given SINR, or the base rate if none qualifies (the sender will try
// and likely fail, as real rate-fallback schemes do on stale state).
func PickRate(sinrDB float64) Rate {
	best := Rates[0]
	for _, r := range Rates {
		if sinrDB >= r.MinSINRdB {
			best = r
		}
	}
	return best
}

// ChannelOverlap returns the fraction of transmit power from a sender on
// channel a that lands in a receiver's filter on channel b. Values follow
// the measured 802.11b spectral-mask overlap ladder.
func ChannelOverlap(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	switch d {
	case 0:
		return 1.0
	case 1:
		return 0.7272
	case 2:
		return 0.2714
	case 3:
		return 0.0375
	case 4:
		return 0.0054
	default:
		return 0
	}
}

// Transmission is one frame in flight on the medium.
type Transmission struct {
	Seq     uint64
	Src     *Radio
	Bits    int
	Rate    Rate
	Start   sim.Time
	End     sim.Time
	payload any
	// interferenceMW accumulates, per prospective receiver radio ID, the
	// worst-case interference power observed while this transmission was
	// in the air.
	interferenceMW map[int]float64
}

// Payload returns the opaque payload attached at Transmit time.
func (t *Transmission) Payload() any { return t.payload }

// Airtime returns the duration the transmission occupies the medium.
func (t *Transmission) Airtime() sim.Time { return t.End - t.Start }

// Receipt describes the outcome of a transmission at one receiver.
type Receipt struct {
	Tx      *Transmission
	RSSIdBm float64
	SINRdB  float64
	OK      bool // decoded successfully
}

// Radio is one transceiver attached to a Medium.
type Radio struct {
	ID         int
	Name       string
	Pos        geo.Point
	Channel    int
	TxPowerDBm float64

	// CSThresholdDBm is the carrier-sense energy-detect threshold; the
	// medium reports busy to this radio when total in-band energy at its
	// position exceeds it.
	CSThresholdDBm float64

	// OnReceive, if non-nil, is invoked for every transmission that ends
	// while this radio is attached and not the sender, whether or not it
	// decoded (Receipt.OK tells which). Sender excluded.
	OnReceive func(Receipt)

	medium *Medium
}

// Medium is the shared 2.4 GHz band.
type Medium struct {
	kernel *sim.Kernel
	env    *env.Environment

	radios map[int]*Radio
	active map[uint64]*Transmission
	nextID int
	seq    uint64

	// Stats
	Sent      uint64
	Delivered uint64
	Lost      uint64
}

// NewMedium creates an empty medium over the given environment.
func NewMedium(k *sim.Kernel, e *env.Environment) *Medium {
	return &Medium{
		kernel: k,
		env:    e,
		radios: make(map[int]*Radio),
		active: make(map[uint64]*Transmission),
	}
}

// Kernel returns the owning simulation kernel.
func (m *Medium) Kernel() *sim.Kernel { return m.kernel }

// Env returns the propagation environment.
func (m *Medium) Env() *env.Environment { return m.env }

// NewRadio creates, attaches and returns a radio. Channel is clamped to
// the legal range.
func (m *Medium) NewRadio(name string, pos geo.Point, channel int, txPowerDBm float64) *Radio {
	if channel < MinChannel {
		channel = MinChannel
	}
	if channel > MaxChannel {
		channel = MaxChannel
	}
	m.nextID++
	r := &Radio{
		ID:             m.nextID,
		Name:           name,
		Pos:            pos,
		Channel:        channel,
		TxPowerDBm:     txPowerDBm,
		CSThresholdDBm: -82,
		medium:         m,
	}
	m.radios[r.ID] = r
	return r
}

// Detach removes a radio from the medium; in-flight transmissions to it
// are not delivered.
func (m *Medium) Detach(r *Radio) { delete(m.radios, r.ID) }

// Radios returns the number of attached radios.
func (m *Medium) Radios() int { return len(m.radios) }

// EnergyAtDBm returns the total in-band energy a radio currently senses:
// the channel-overlap-weighted sum of all active transmissions' received
// power at the radio's position, plus the noise floor.
func (m *Medium) EnergyAtDBm(r *Radio) float64 {
	total := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	now := m.kernel.Now()
	for _, tx := range m.active {
		if tx.Src.ID == r.ID {
			continue
		}
		if now-tx.Start < SensingDelay {
			continue // within the vulnerable window: not yet detectable
		}
		ov := ChannelOverlap(tx.Src.Channel, r.Channel)
		if ov == 0 {
			continue
		}
		rx := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, r.Pos)
		total += env.DBmToMilliwatts(rx) * ov
	}
	return env.MilliwattsToDBm(total)
}

// Busy reports whether the radio's carrier sense sees the medium busy.
func (m *Medium) Busy(r *Radio) bool {
	return m.EnergyAtDBm(r) > r.CSThresholdDBm
}

// SNRAtDBm returns the signal-to-noise ratio (no interference) a receiver
// would see for a transmission from src, used for rate selection.
func (m *Medium) SNRAtDBm(src, dst *Radio) float64 {
	rx := m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
	return rx - m.env.NoiseFloorDBm()
}

// MeasureRSSI returns the received power at dst for a probe from src —
// the primitive on which RSSI ranging is built.
func (m *Medium) MeasureRSSI(src, dst *Radio) float64 {
	return m.env.ReceivedPowerDBm(src.TxPowerDBm, src.Pos, dst.Pos)
}

// ErrZeroBits is returned by Transmit for an empty frame.
var ErrZeroBits = errors.New("radio: transmission must carry at least one bit")

// Transmit puts a frame on the air from r. The frame occupies the medium
// for bits/rate seconds; when it ends, every other attached radio's
// OnReceive fires with a Receipt. The payload is carried opaquely.
func (m *Medium) Transmit(r *Radio, bits int, rate Rate, payload any) (*Transmission, error) {
	if bits <= 0 {
		return nil, ErrZeroBits
	}
	if _, ok := m.radios[r.ID]; !ok {
		return nil, fmt.Errorf("radio: %s not attached", r.Name)
	}
	airSeconds := float64(bits) / (rate.Mbps * 1e6)
	now := m.kernel.Now()
	m.seq++
	tx := &Transmission{
		Seq:            m.seq,
		Src:            r,
		Bits:           bits,
		Rate:           rate,
		Start:          now,
		End:            now + sim.Time(airSeconds*float64(sim.Second)),
		payload:        payload,
		interferenceMW: make(map[int]float64),
	}
	// Record mutual interference with all currently active transmissions.
	for _, other := range m.active {
		m.recordInterference(tx, other)
		m.recordInterference(other, tx)
	}
	m.active[tx.Seq] = tx
	m.Sent++
	m.kernel.Schedule(tx.End-now, "radio.txEnd", func() { m.finish(tx) })
	return tx, nil
}

// recordInterference adds other's power into victim's per-receiver
// interference ledger.
func (m *Medium) recordInterference(victim, other *Transmission) {
	for id, rx := range m.radios {
		if id == victim.Src.ID || id == other.Src.ID {
			continue
		}
		ov := ChannelOverlap(other.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		p := env.DBmToMilliwatts(m.env.ReceivedPowerDBm(other.Src.TxPowerDBm, other.Src.Pos, rx.Pos)) * ov
		victim.interferenceMW[id] += p
	}
}

// finish delivers a completed transmission to every attached radio.
func (m *Medium) finish(tx *Transmission) {
	delete(m.active, tx.Seq)
	noiseMW := env.DBmToMilliwatts(m.env.NoiseFloorDBm())
	for id, rx := range m.radios {
		if id == tx.Src.ID || rx.OnReceive == nil {
			continue
		}
		ov := ChannelOverlap(tx.Src.Channel, rx.Channel)
		if ov == 0 {
			continue
		}
		rssi := m.env.ReceivedPowerDBm(tx.Src.TxPowerDBm, tx.Src.Pos, rx.Pos)
		sigMW := env.DBmToMilliwatts(rssi) * ov
		intMW := tx.interferenceMW[id]
		sinr := 10 * math.Log10(sigMW/(noiseMW+intMW))
		ok := sinr >= tx.Rate.MinSINRdB
		if ok {
			m.Delivered++
		} else {
			m.Lost++
		}
		rx.OnReceive(Receipt{Tx: tx, RSSIdBm: rssi, SINRdB: sinr, OK: ok})
	}
}

// ActiveTransmissions returns the number of frames currently in the air.
func (m *Medium) ActiveTransmissions() int { return len(m.active) }

// EstimateDistance performs RSSI ranging from src to dst: it measures the
// received power and inverts the free-space-with-exponent model. Walls and
// shadowing corrupt the estimate, reproducing experiment C8.
func (m *Medium) EstimateDistance(src, dst *Radio) float64 {
	rssi := m.MeasureRSSI(src, dst)
	return m.env.EstimateDistanceFromRSSI(src.TxPowerDBm, rssi)
}
