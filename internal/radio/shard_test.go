package radio

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

// denseWorld builds a dense medium with n radios across the band and a
// receipt trace recorder, mirroring the benchDense topology. Every
// receipt is appended to the trace in delivery order with its full
// float64 payload, so two runs with equal traces delivered identical
// receipts in an identical order.
type denseWorld struct {
	k      *sim.Kernel
	m      *Medium
	radios []*Radio
	trace  strings.Builder
}

func newDenseWorld(n int, txPowerDBm float64, opts ...MediumOption) *denseWorld {
	k := sim.New(1)
	side := 1000.0
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, side, side)))
	w := &denseWorld{k: k, m: NewMedium(k, e, opts...)}
	cols := 32
	for i := 0; i < n; i++ {
		pos := geo.Pt(float64(i%cols)*(side/float64(cols)), float64(i/cols)*(side/float64(cols)))
		r := w.m.NewRadio(fmt.Sprintf("r%d", i), pos, allChannels[i%len(allChannels)], txPowerDBm)
		id := r.ID
		r.OnReceive = func(rc Receipt) {
			fmt.Fprintf(&w.trace, "%d<-%d %x %x %v\n", id, rc.Tx.Seq, math.Float64bits(rc.RSSIdBm), math.Float64bits(rc.SINRdB), rc.OK)
		}
		w.radios = append(w.radios, r)
	}
	return w
}

// run fires rounds of staggered overlapping bursts (and, when mobile,
// interleaved movement) and returns the full receipt trace plus stats.
func (w *denseWorld) run(rounds int, mobile bool) string {
	const burst = 48
	n := len(w.radios)
	for i := 0; i < rounds; i++ {
		for j := 0; j < burst; j++ {
			src := w.radios[(i*burst+j*17)%n]
			lo, hi := j*n/burst, (j+1)*n/burst
			w.k.Schedule(sim.Time(j)*50*sim.Microsecond, "test.tx", func() {
				if mobile {
					for idx := lo; idx < hi; idx++ {
						r := w.radios[idx]
						r.SetPos(geo.Pt(
							math.Mod(r.Pos.X+7.3+float64(idx%5), 1000),
							math.Mod(r.Pos.Y+4.1, 1000),
						))
					}
				}
				if _, err := w.m.Transmit(src, 2000, Rates[0], nil); err != nil {
					panic(err)
				}
			})
		}
		w.k.Run()
	}
	fmt.Fprintf(&w.trace, "sent=%d delivered=%d lost=%d steps=%d now=%v\n",
		w.m.Sent, w.m.Delivered, w.m.Lost, w.k.Steps(), w.k.Now())
	return w.trace.String()
}

var shardTestOpts = []MediumOption{WithRxCutoffDBm(-100), WithGridCellM(50)}

// The core digest guarantee at the medium level: the sharded execution
// mode delivers bit-identical receipts in an identical order to the
// sequential medium, static and mobile, across shard counts.
func TestShardedDeliveryMatchesSequential(t *testing.T) {
	for _, mobile := range []bool{false, true} {
		seqW := newDenseWorld(240, 0, shardTestOpts...)
		want := seqW.run(3, mobile)
		for _, shards := range []int{2, 4} {
			w := newDenseWorld(240, 0, shardTestOpts...)
			if got := w.m.SetShards(shards); got != shards {
				t.Fatalf("SetShards(%d)=%d, expected sharding to engage", shards, got)
			}
			if lay, ok := w.m.ShardLayout(); !ok || lay.Regions < 2 {
				t.Fatalf("expected a multi-region layout, got %+v ok=%v", lay, ok)
			}
			got := w.run(3, mobile)
			if got != want {
				t.Errorf("mobile=%v shards=%d: sharded trace diverges from sequential (len %d vs %d)",
					mobile, shards, len(got), len(want))
			}
			w.m.StopShards()
		}
	}
}

// WithShards at construction time must behave exactly like SetShards
// after construction.
func TestWithShardsOptionMatchesSetShards(t *testing.T) {
	seqW := newDenseWorld(200, 0, shardTestOpts...)
	want := seqW.run(2, false)
	w := newDenseWorld(200, 0, append([]MediumOption{WithShards(4)}, shardTestOpts...)...)
	if w.m.Shards() != 4 {
		t.Fatalf("WithShards(4) not applied: Shards()=%d", w.m.Shards())
	}
	if got := w.run(2, false); got != want {
		t.Error("WithShards-constructed medium diverges from sequential")
	}
	w.m.StopShards()
}

// Documented sequential fallbacks: n < 1, no receive cutoff, arena too
// small for two regions. All return 1 and never error.
func TestSetShardsFallbacks(t *testing.T) {
	w := newDenseWorld(10, 0, shardTestOpts...)
	for _, n := range []int{-3, 0, 1} {
		if got := w.m.SetShards(n); got != 1 {
			t.Errorf("SetShards(%d)=%d want 1", n, got)
		}
		if w.m.Shards() != 1 {
			t.Errorf("after SetShards(%d): Shards()=%d want 1", n, w.m.Shards())
		}
	}
	// No cutoff: unbounded hearing radius, no finite tile satisfies the
	// lookahead contract.
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 1000, 1000)))
	m := NewMedium(k, e)
	if got := m.SetShards(4); got != 1 {
		t.Errorf("SetShards without a cutoff = %d, want sequential fallback 1", got)
	}
	// Arena too small: a 0 dBm radio against -100 dBm hears ~100 m, and
	// a 150 m arena cannot hold two 100 m tiles in any axis.
	k2 := sim.New(1)
	e2 := env.New(k2, geo.NewFloorPlan(geo.RectAt(0, 0, 150, 150)))
	m2 := NewMedium(k2, e2, WithRxCutoffDBm(-100))
	m2.NewRadio("a", geo.Pt(10, 10), 1, 0)
	if got := m2.SetShards(4); got != 1 {
		t.Errorf("SetShards on a too-small arena = %d, want sequential fallback 1", got)
	}
	if _, ok := m2.ShardLayout(); ok {
		t.Error("fallback medium still reports a shard layout")
	}
}

// Region membership and border sets must track attach, move, and
// detach: every attached radio sits in exactly one region's member
// set (its position's region), and is in the border set iff its
// hearing circle crosses the tile boundary.
func TestShardRegionMaintenance(t *testing.T) {
	w := newDenseWorld(120, 0, shardTestOpts...)
	if got := w.m.SetShards(4); got != 4 {
		t.Fatalf("SetShards(4)=%d", got)
	}
	check := func(when string) {
		t.Helper()
		sh := w.m.shard
		total := 0
		for _, reg := range sh.regions {
			total += len(reg.members)
			for _, r := range reg.members {
				if int(r.region) != reg.id {
					t.Fatalf("%s: radio %d in region %d's members but tagged %d", when, r.ID, reg.id, r.region)
				}
				if got := sh.rm.RegionOf(r.Pos); got != reg.id {
					t.Fatalf("%s: radio %d at %v classified %d, position says %d", when, r.ID, r.Pos, reg.id, got)
				}
				wantBorder := sh.rm.CrossesBoundary(r.Pos, w.m.hearingRange(r))
				inBorder := false
				for _, b := range reg.border {
					if b == r {
						inBorder = true
					}
				}
				if wantBorder != inBorder {
					t.Fatalf("%s: radio %d border=%v want %v", when, r.ID, inBorder, wantBorder)
				}
			}
		}
		if total != w.m.Radios() {
			t.Fatalf("%s: region members total %d, attached %d", when, total, w.m.Radios())
		}
	}
	check("initial")
	// Sweep a radio across the arena: region transfers and border flips.
	r := w.radios[7]
	for x := 5.0; x < 1000; x += 33 {
		r.SetPos(geo.Pt(x, 481))
		check(fmt.Sprintf("move x=%g", x))
	}
	w.m.Detach(r)
	check("detach")
	nr := w.m.NewRadio("late", geo.Pt(777, 123), 3, 0)
	check("attach")
	nr.SetPos(geo.Pt(3, 3))
	check("attach+move")
	w.m.StopShards()
}

// The scramble fault injection reverses the commit order; the receipt
// trace must diverge from the sequential ordering while the delivery
// counts stay equal — exactly the class of bug (merge order) the
// determinism suite exists to catch.
func TestScrambledCommitDiverges(t *testing.T) {
	seqW := newDenseWorld(240, 0, shardTestOpts...)
	want := seqW.run(2, false)
	w := newDenseWorld(240, 0, shardTestOpts...)
	if got := w.m.SetShards(2); got != 2 {
		t.Fatalf("SetShards(2)=%d", got)
	}
	w.m.ScrambleShardCommit(true)
	got := w.run(2, false)
	if got == want {
		t.Fatal("scrambled commit produced the sequential trace: the fault injection is dead and the suite would miss merge-order bugs")
	}
	if seqW.m.Delivered != w.m.Delivered || seqW.m.Lost != w.m.Lost {
		t.Fatalf("scramble changed outcomes, not just order: delivered %d/%d lost %d/%d",
			seqW.m.Delivered, w.m.Delivered, seqW.m.Lost, w.m.Lost)
	}
	w.m.StopShards()
}

// A receipt callback that mutates the world mid-commit (detach, move,
// retune of a later receiver) must observe sequential semantics: the
// physGen staleness check falls back to inline recomputation.
func TestShardedCallbackMutationMidCommit(t *testing.T) {
	build := func(shards int) (*denseWorld, string) {
		w := newDenseWorld(240, 0, shardTestOpts...)
		if shards > 1 {
			if got := w.m.SetShards(shards); got != shards {
				panic("sharding did not engage")
			}
		}
		// The lowest-ID radio sabotages each delivery round: on every
		// receipt it moves one later radio, retunes another, and
		// detaches a third (once). Sequential and sharded runs must
		// agree on the resulting receipts.
		saboteur := w.radios[0]
		victimMove, victimTune, victimDetach := w.radios[200], w.radios[210], w.radios[220]
		detached := false
		inner := saboteur.OnReceive
		saboteur.OnReceive = func(rc Receipt) {
			inner(rc)
			victimMove.SetPos(geo.Pt(victimMove.Pos.X+11, victimMove.Pos.Y))
			victimTune.SetChannel(victimTune.Channel%MaxChannel + 1)
			if !detached {
				detached = true
				w.m.Detach(victimDetach)
			}
		}
		return w, w.run(2, false)
	}
	_, want := build(1)
	for _, shards := range []int{2, 4} {
		if _, got := build(shards); got != want {
			t.Errorf("shards=%d: mid-commit mutations diverge from sequential semantics", shards)
		}
	}
}

// Sharded transmissions draw ledgers from their source region's pool
// and return them there.
func TestShardedLedgersAreRegionPooled(t *testing.T) {
	w := newDenseWorld(120, 0, shardTestOpts...)
	if got := w.m.SetShards(4); got != 4 {
		t.Fatalf("SetShards(4)=%d", got)
	}
	w.run(2, false)
	pooled := 0
	for _, reg := range w.m.shard.regions {
		pooled += len(reg.ledgerFree)
	}
	if pooled == 0 {
		t.Fatal("no ledgers returned to region pools after sharded traffic")
	}
	if len(w.m.ledgerFree) != 0 {
		t.Fatalf("%d ledgers leaked into the medium-wide pool during sharded execution", len(w.m.ledgerFree))
	}
	w.m.StopShards()
}

// A radio louder than the partition's sizing power marks the layout
// stale; the next event rebuilds with tiles covering the new hearing
// circle. A 25 dBm radio against the -100 dBm cutoff hears ~680 m, so
// the 1000 m arena collapses to a single region: the engine must fall
// back to sequential execution mid-run — silently, never an error —
// and the run stays digest-equal to sequential.
func TestShardLayoutRebuildOnLouderRadio(t *testing.T) {
	seqW := newDenseWorld(200, 0, shardTestOpts...)
	seqW.m.NewRadio("loud", geo.Pt(500, 500), 6, 25).OnReceive = func(Receipt) {}
	want := seqW.run(2, false)

	w := newDenseWorld(200, 0, shardTestOpts...)
	if got := w.m.SetShards(4); got != 4 {
		t.Fatalf("SetShards(4)=%d", got)
	}
	before, _ := w.m.ShardLayout()
	if before.Regions < 2 {
		t.Fatalf("expected a multi-region layout before the loud attach, got %d", before.Regions)
	}
	w.m.NewRadio("loud", geo.Pt(500, 500), 6, 25).OnReceive = func(Receipt) {}
	if !w.m.shard.layoutStale {
		t.Fatal("louder radio did not mark the layout stale")
	}
	got := w.run(2, false)
	after, _ := w.m.ShardLayout()
	if after.Regions != 1 {
		t.Fatalf("rebuild did not coarsen the partition to the single-region fallback: %d -> %d regions", before.Regions, after.Regions)
	}
	if got != want {
		t.Error("post-rebuild sharded trace diverges from sequential")
	}
	w.m.StopShards()
}
