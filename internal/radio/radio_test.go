package radio

import (
	"fmt"
	"math"
	"testing"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
)

func newMedium(seed int64) (*sim.Kernel, *Medium) {
	k := sim.New(seed)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 100, 100)))
	return k, NewMedium(k, e)
}

func TestPickRate(t *testing.T) {
	if r := PickRate(50); r.Mbps != 11 {
		t.Fatalf("high SNR rate = %v", r.Mbps)
	}
	if r := PickRate(8); r.Mbps != 2 {
		t.Fatalf("8 dB rate = %v", r.Mbps)
	}
	if r := PickRate(-5); r.Mbps != 1 {
		t.Fatalf("low SNR rate = %v", r.Mbps)
	}
	if r := PickRate(9); r.Mbps != 5.5 {
		t.Fatalf("9 dB rate = %v", r.Mbps)
	}
}

func TestChannelOverlap(t *testing.T) {
	if ChannelOverlap(6, 6) != 1 {
		t.Fatal("co-channel overlap != 1")
	}
	if ChannelOverlap(1, 6) != 0 || ChannelOverlap(1, 11) != 0 {
		t.Fatal("orthogonal channels should not overlap")
	}
	if ChannelOverlap(1, 2) != ChannelOverlap(2, 1) {
		t.Fatal("overlap not symmetric")
	}
	prev := 1.1
	for d := 0; d <= 5; d++ {
		ov := ChannelOverlap(1, 1+d)
		if ov >= prev {
			t.Fatalf("overlap not decreasing at distance %d", d)
		}
		prev = ov
	}
}

func TestChannelClamping(t *testing.T) {
	_, m := newMedium(1)
	lo := m.NewRadio("lo", geo.Pt(0, 0), -3, 15)
	hi := m.NewRadio("hi", geo.Pt(0, 0), 99, 15)
	if lo.Channel != MinChannel || hi.Channel != MaxChannel {
		t.Fatalf("channels not clamped: %d, %d", lo.Channel, hi.Channel)
	}
}

func TestTransmitDelivers(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(5, 0), 6, 15)
	var got []Receipt
	b.OnReceive = func(r Receipt) { got = append(got, r) }
	tx, err := m.Transmit(a, 8000, PickRate(m.SNRAtDBm(a, b)), "hello")
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got) != 1 {
		t.Fatalf("receipts = %d, want 1", len(got))
	}
	r := got[0]
	if !r.OK {
		t.Fatalf("close-range frame not decoded: SINR=%v", r.SINRdB)
	}
	if r.Tx != tx || r.Tx.Payload() != "hello" {
		t.Fatal("wrong transmission or payload")
	}
	if m.Delivered != 1 || m.Lost != 0 || m.Sent != 1 {
		t.Fatalf("stats = sent %d delivered %d lost %d", m.Sent, m.Delivered, m.Lost)
	}
}

func TestAirtime(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	m.NewRadio("b", geo.Pt(5, 0), 6, 15)
	tx, err := m.Transmit(a, 11_000_000, Rate{11, 12}, nil) // 1 second at 11 Mbps
	if err != nil {
		t.Fatal(err)
	}
	if at := tx.Airtime(); at != sim.Second {
		t.Fatalf("airtime = %v, want 1s", at)
	}
	k.Run()
	if k.Now() != sim.Second {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestSenderDoesNotReceiveOwnFrame(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	selfRx := false
	a.OnReceive = func(Receipt) { selfRx = true }
	if _, err := m.Transmit(a, 100, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if selfRx {
		t.Fatal("sender received its own frame")
	}
}

func TestFarReceiverFailsToDecode(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(95, 95), 6, 15)
	var r *Receipt
	b.OnReceive = func(rc Receipt) { r = &rc }
	// Force the highest rate regardless of SNR: should fail at ~134 m.
	if _, err := m.Transmit(a, 8000, Rate{11, 12}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if r == nil {
		t.Fatal("no receipt")
	}
	if r.OK {
		t.Fatalf("distant 11 Mbps frame decoded: SINR=%v", r.SINRdB)
	}
	if m.Lost != 1 {
		t.Fatalf("lost = %d", m.Lost)
	}
}

func TestCollisionCausesLoss(t *testing.T) {
	k, m := newMedium(1)
	// Two senders equidistant from the receiver on the same channel:
	// SINR ~ 0 dB, below every threshold.
	a := m.NewRadio("a", geo.Pt(0, 50), 6, 15)
	c := m.NewRadio("c", geo.Pt(100, 50), 6, 15)
	b := m.NewRadio("b", geo.Pt(50, 50), 6, 15)
	oks := 0
	fails := 0
	b.OnReceive = func(r Receipt) {
		if r.OK {
			oks++
		} else {
			fails++
		}
	}
	if _, err := m.Transmit(a, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit(c, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if oks != 0 || fails != 2 {
		t.Fatalf("collision outcome: ok=%d fail=%d, want 0/2", oks, fails)
	}
}

func TestOrthogonalChannelsDoNotCollide(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(45, 50), 1, 15)
	c := m.NewRadio("c", geo.Pt(55, 50), 11, 15)
	b1 := m.NewRadio("b1", geo.Pt(44, 50), 1, 15)
	b2 := m.NewRadio("b2", geo.Pt(56, 50), 11, 15)
	ok1, ok2 := false, false
	b1.OnReceive = func(r Receipt) { ok1 = r.OK }
	b2.OnReceive = func(r Receipt) { ok2 = r.OK }
	if _, err := m.Transmit(a, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit(c, 8000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !ok1 || !ok2 {
		t.Fatalf("orthogonal channels interfered: ok1=%v ok2=%v", ok1, ok2)
	}
}

func TestAdjacentChannelPartialInterference(t *testing.T) {
	// An adjacent-channel (d=1) interferer leaks 73% of its power; a d=5
	// interferer leaks none. The adjacent case should produce lower SINR.
	run := func(interfererChannel int) float64 {
		k, m := newMedium(1)
		a := m.NewRadio("a", geo.Pt(48, 50), 6, 15)
		b := m.NewRadio("b", geo.Pt(52, 50), 6, 15)
		i := m.NewRadio("i", geo.Pt(60, 50), interfererChannel, 15)
		var sinr float64
		b.OnReceive = func(r Receipt) {
			if r.Tx.Src.ID == a.ID {
				sinr = r.SINRdB
			}
		}
		if _, err := m.Transmit(i, 80000, Rates[0], nil); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Transmit(a, 8000, Rates[3], nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return sinr
	}
	adj := run(7)
	far := run(11)
	if adj >= far {
		t.Fatalf("adjacent-channel SINR %v should be below orthogonal %v", adj, far)
	}
}

func TestBusyCarrierSense(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(5, 0), 6, 15)
	if m.Busy(b) {
		t.Fatal("idle medium reported busy")
	}
	if _, err := m.Transmit(a, 1_000_000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	// Within the sensing delay the transmission is not yet detectable.
	if m.Busy(b) {
		t.Fatal("carrier sense detected a transmission inside the vulnerable window")
	}
	k.RunUntil(k.Now() + 2*SensingDelay)
	if !m.Busy(b) {
		t.Fatal("medium with active close transmission reported idle")
	}
	if m.ActiveTransmissions() != 1 {
		t.Fatalf("active = %d", m.ActiveTransmissions())
	}
	k.Run()
	if m.Busy(b) {
		t.Fatal("medium busy after all transmissions ended")
	}
}

func TestZeroBitsRejected(t *testing.T) {
	_, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	if _, err := m.Transmit(a, 0, Rates[0], nil); err == nil {
		t.Fatal("zero-bit transmission accepted")
	}
}

func TestDetachedRadioRejected(t *testing.T) {
	_, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	m.Detach(a)
	if _, err := m.Transmit(a, 100, Rates[0], nil); err == nil {
		t.Fatal("detached radio transmitted")
	}
}

func TestRangingAccuracy(t *testing.T) {
	_, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(12, 0), 6, 15)
	est := m.EstimateDistance(a, b)
	if math.Abs(est-12) > 0.01 {
		t.Fatalf("ranging estimate = %v, want 12", est)
	}
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	_, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	near := m.NewRadio("n", geo.Pt(3, 0), 6, 15)
	far := m.NewRadio("f", geo.Pt(60, 0), 6, 15)
	if m.SNRAtDBm(a, near) <= m.SNRAtDBm(a, far) {
		t.Fatal("SNR should fall with distance")
	}
}

func TestReceiptOrderDeterministicAndAscending(t *testing.T) {
	run := func() []int {
		k, m := newMedium(1)
		a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
		var order []int
		for i := 0; i < 12; i++ {
			r := m.NewRadio("r", geo.Pt(float64(i+1), 0), 6, 15)
			r.OnReceive = func(rc Receipt) { order = append(order, r.ID) }
		}
		if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return order
	}
	first := run()
	if len(first) != 12 {
		t.Fatalf("receipts = %d, want 12", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("receipts not in ascending ID order: %v", first)
		}
	}
	for trial := 0; trial < 10; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("trial %d: receipt count varies", trial)
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d: order varies: %v vs %v", trial, got, first)
				}
			}
		}
	}
}

func TestSetPosKeepsSpatialIndexCurrent(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 1000, 1000)))
	m := NewMedium(k, e, WithRxCutoffDBm(-95), WithGridCellM(20))
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(900, 900), 6, 15)
	got := 0
	b.OnReceive = func(Receipt) { got++ }
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 0 {
		t.Fatal("out-of-range radio received a frame despite the cutoff")
	}
	// Walk b next to a: the grid must see the move.
	b.SetPos(geo.Pt(5, 0))
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 1 {
		t.Fatalf("moved radio receipts = %d, want 1", got)
	}
	// And walk it away again.
	b.SetPos(geo.Pt(900, 900))
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 1 {
		t.Fatalf("receipts after moving away = %d, want 1", got)
	}
}

func TestSetChannelKeepsPartitionCurrent(t *testing.T) {
	k, m := newMedium(1)
	a := m.NewRadio("a", geo.Pt(0, 0), 1, 15)
	b := m.NewRadio("b", geo.Pt(5, 0), 11, 15)
	got := 0
	b.OnReceive = func(Receipt) { got++ }
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 0 {
		t.Fatal("orthogonal-channel radio heard the frame")
	}
	b.SetChannel(1)
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 1 {
		t.Fatalf("retuned radio receipts = %d, want 1", got)
	}
	b.SetChannel(99)
	if b.Channel != MaxChannel {
		t.Fatalf("SetChannel did not clamp: %d", b.Channel)
	}
}

func TestIndexedMatchesFullScanPhysics(t *testing.T) {
	// With the cutoff disabled, the channel-partitioned medium must
	// produce exactly the receipts the naive full scan does.
	type outcome struct {
		id   int
		sinr float64
		ok   bool
	}
	run := func(opts ...MediumOption) []outcome {
		k := sim.New(3)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 300, 300)))
		m := NewMedium(k, e, opts...)
		var radios []*Radio
		var out []outcome
		for i := 0; i < 40; i++ {
			ch := 1 + (i*3)%11
			r := m.NewRadio("r", geo.Pt(float64(i%8)*35, float64(i/8)*35), ch, 15)
			r.OnReceive = func(rc Receipt) {
				out = append(out, outcome{r.ID, rc.SINRdB, rc.OK})
			}
			radios = append(radios, r)
		}
		for i := 0; i < 6; i++ {
			src := radios[i*7]
			k.Schedule(sim.Time(i)*100*sim.Microsecond, "tx", func() {
				if _, err := m.Transmit(src, 4000, Rates[0], nil); err != nil {
					t.Error(err)
				}
			})
		}
		k.Run()
		return out
	}
	indexed := run()
	naive := run(WithFullScan())
	if len(indexed) != len(naive) {
		t.Fatalf("receipt counts differ: indexed %d vs full-scan %d", len(indexed), len(naive))
	}
	for i := range indexed {
		if indexed[i] != naive[i] {
			t.Fatalf("receipt %d differs: indexed %+v vs full-scan %+v", i, indexed[i], naive[i])
		}
	}
}

func TestDetachRemovesFromAllIndexes(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 100, 100)))
	m := NewMedium(k, e, WithRxCutoffDBm(-95))
	a := m.NewRadio("a", geo.Pt(0, 0), 6, 15)
	b := m.NewRadio("b", geo.Pt(5, 0), 6, 15)
	got := 0
	b.OnReceive = func(Receipt) { got++ }
	m.Detach(b)
	m.Detach(b) // double-detach is a no-op
	if m.Radios() != 1 {
		t.Fatalf("radios = %d, want 1", m.Radios())
	}
	if _, err := m.Transmit(a, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 0 {
		t.Fatal("detached radio received a frame")
	}
}

func TestCutoffSkipsOnlyInaudibleRadios(t *testing.T) {
	// A cutoff of -95 dBm must not change whether nearby frames decode.
	run := func(opts ...MediumOption) (delivered, lost uint64) {
		k := sim.New(5)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
		m := NewMedium(k, e, opts...)
		var radios []*Radio
		for i := 0; i < 30; i++ {
			r := m.NewRadio("r", geo.Pt(float64(i%6)*8, float64(i/6)*8), 6, 15)
			r.OnReceive = func(Receipt) {}
			radios = append(radios, r)
		}
		for i := 0; i < 5; i++ {
			src := radios[i*6]
			k.Schedule(sim.Time(i)*sim.Millisecond, "tx", func() {
				if _, err := m.Transmit(src, 4000, Rates[0], nil); err != nil {
					t.Error(err)
				}
			})
		}
		k.Run()
		return m.Delivered, m.Lost
	}
	d1, l1 := run()
	d2, l2 := run(WithRxCutoffDBm(-95))
	if d1 != d2 || l1 != l2 {
		t.Fatalf("cutoff changed close-range outcomes: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
}

// sameBacking reports whether two candidate slices share a backing
// array — i.e. the cache was reused rather than rebuilt.
func sameBacking(a, b []*Radio) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func TestSetPosUnchangedPositionIsFree(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
	m := NewMedium(k, e, WithRxCutoffDBm(-95))
	a := m.NewRadio("a", geo.Pt(10, 10), 6, 15)
	m.NewRadio("b", geo.Pt(20, 10), 6, 15)
	c1 := m.candidatesFor(a)
	a.SetPos(a.Pos) // no-op move: must not touch the grid or any cache
	if !sameBacking(c1, m.candidatesFor(a)) {
		t.Fatal("SetPos with unchanged position invalidated the candidate cache")
	}
	// Same guard in global-invalidation mode.
	mg := NewMedium(k, e, WithRxCutoffDBm(-95), WithGlobalInvalidation())
	ag := mg.NewRadio("a", geo.Pt(10, 10), 6, 15)
	mg.NewRadio("b", geo.Pt(20, 10), 6, 15)
	g1 := mg.candidatesFor(ag)
	ag.SetPos(ag.Pos)
	if !sameBacking(g1, mg.candidatesFor(ag)) {
		t.Fatal("global mode: SetPos with unchanged position wiped caches")
	}
}

func TestCellGranularInvalidation(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
	// 15 dBm at a -60 dBm cutoff hears out to ~14.7 m; 10 m cells keep
	// the cover box tight around b so the cases below are unambiguous.
	m := NewMedium(k, e, WithRxCutoffDBm(-60), WithGridCellM(10))
	b := m.NewRadio("b", geo.Pt(5, 5), 6, 15)
	near := m.NewRadio("near", geo.Pt(15, 5), 6, 15)  // in range
	edge := m.NewRadio("edge", geo.Pt(25, 5), 6, 15)  // in b's box, out of range
	far := m.NewRadio("far", geo.Pt(95, 95), 6, 15)   // far outside b's box
	_ = near

	c1 := m.candidatesFor(b)
	// The candidate set is cell-conservative: edge sits in a covered
	// cell, so it is listed even though it is beyond hearing range.
	found := false
	for _, r := range c1 {
		if r == edge {
			found = true
		}
	}
	if !found {
		t.Fatal("cell-conservative candidate set should include in-box out-of-range radios")
	}

	// A within-cell move far away leaves b's cache untouched.
	far.SetPos(geo.Pt(96, 96))
	if !sameBacking(c1, m.candidatesFor(b)) {
		t.Fatal("within-cell move of an unrelated radio invalidated b's cache")
	}
	// Even a cell-crossing move leaves b untouched when both cells are
	// outside b's cover.
	far.SetPos(geo.Pt(85, 85))
	if !sameBacking(c1, m.candidatesFor(b)) {
		t.Fatal("far cell crossing invalidated b's cache")
	}
	// A crossing between two cells both inside b's cover preserves the
	// cover's union, so the cache also survives.
	near.SetPos(geo.Pt(5, 15))
	if !sameBacking(c1, m.candidatesFor(b)) {
		t.Fatal("union-preserving crossing inside the cover invalidated b's cache")
	}
	// But a crossing out of b's cover rebuilds it.
	edge.SetPos(geo.Pt(41, 5))
	c2 := m.candidatesFor(b)
	if sameBacking(c1, c2) {
		t.Fatal("crossing out of the cover did not invalidate b's cache")
	}
	for _, r := range c2 {
		if r == edge {
			t.Fatal("rebuilt candidate set still lists the departed radio")
		}
	}
	// And b's own cell crossing rebuilds b's cache (anchor moved).
	c3 := m.candidatesFor(b)
	b.SetPos(geo.Pt(15, 15))
	if sameBacking(c3, m.candidatesFor(b)) {
		t.Fatal("b's own cell crossing did not invalidate its cache")
	}
}

func TestDeliveryAppliesExactRangeAtUseTime(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
	m := NewMedium(k, e, WithRxCutoffDBm(-60), WithGridCellM(10))
	b := m.NewRadio("b", geo.Pt(5, 5), 6, 15)
	near := m.NewRadio("near", geo.Pt(15, 5), 6, 15) // ~10 m: audible
	edge := m.NewRadio("edge", geo.Pt(25, 5), 6, 15) // ~20 m: in box, below cutoff
	nearGot, edgeGot := 0, 0
	near.OnReceive = func(Receipt) { nearGot++ }
	edge.OnReceive = func(Receipt) { edgeGot++ }
	if _, err := m.Transmit(b, 800, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if nearGot != 1 {
		t.Fatalf("in-range radio receipts = %d, want 1", nearGot)
	}
	if edgeGot != 0 {
		t.Fatal("radio beyond the cutoff range received a receipt despite being in the candidate superset")
	}
}

func TestSetChannelInvalidatesOnlyOverlapWindow(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 100, 100)))
	m := NewMedium(k, e) // channel-partition mode, no cutoff
	src := m.NewRadio("src", geo.Pt(0, 0), 1, 15)
	m.NewRadio("w", geo.Pt(5, 0), 3, 15)
	x := m.NewRadio("x", geo.Pt(10, 0), 11, 15)
	c1 := m.candidatesFor(src)
	// 11 -> 10: both sides spectrally out of reach of channel 1's
	// window [1,5]; src's cache survives.
	x.SetChannel(10)
	if !sameBacking(c1, m.candidatesFor(src)) {
		t.Fatal("retune outside the overlap window wiped src's cache")
	}
	// 10 -> 5 enters the window: src's cache rebuilds and now lists x.
	x.SetChannel(5)
	c2 := m.candidatesFor(src)
	if sameBacking(c1, c2) {
		t.Fatal("retune into the overlap window did not invalidate src's cache")
	}
	found := false
	for _, r := range c2 {
		if r == x {
			found = true
		}
	}
	if !found {
		t.Fatal("rebuilt candidate set missing the retuned radio")
	}
}

// TestMobileInvalidationModesAgree drives an identical mobile workload —
// moves within and across cells, retunes, a mid-run attach and detach,
// overlapping transmissions — under cell-granular and global-wipe
// invalidation and requires bit-identical receipt streams.
func TestMobileInvalidationModesAgree(t *testing.T) {
	run := func(opts ...MediumOption) []string {
		k := sim.New(3)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 400, 400)))
		m := NewMedium(k, e, opts...)
		var log []string
		var radios []*Radio
		rng := k.Rand()
		for i := 0; i < 24; i++ {
			id := i
			r := m.NewRadio(fmt.Sprintf("r%d", i),
				geo.Pt(rng.Float64()*400, rng.Float64()*400), 1+i%11, 15)
			r.OnReceive = func(rc Receipt) {
				log = append(log, fmt.Sprintf("%d rx%d tx%d ok=%v rssi=%x sinr=%x",
					k.Now(), id, rc.Tx.Seq, rc.OK,
					math.Float64bits(rc.RSSIdBm), math.Float64bits(rc.SINRdB)))
			}
			radios = append(radios, r)
		}
		// Movers: every radio steps every 200 us; some steps cross cells.
		for i, r := range radios {
			r := r
			dx, dy := 1.0+float64(i%7), 1.0-float64(i%5)
			stop := k.Ticker(200*sim.Microsecond, "move", func() {
				r.SetPos(geo.Pt(
					math.Mod(r.Pos.X+dx+400, 400),
					math.Mod(r.Pos.Y+dy+400, 400)))
			})
			defer stop()
		}
		// Retunes hop a few radios across the band.
		k.Ticker(700*sim.Microsecond, "retune", func() {
			r := radios[int(k.Now()/sim.Microsecond)%len(radios)]
			r.SetChannel(1 + (r.Channel+3)%11)
		})
		// Overlapping traffic.
		for i := range radios {
			src := radios[i]
			k.Schedule(sim.Time(i)*150*sim.Microsecond, "tx", func() {
				if _, err := m.Transmit(src, 2000, Rates[0], nil); err != nil {
					t.Error(err)
				}
			})
		}
		// Mid-run topology churn.
		k.Schedule(2*sim.Millisecond, "attach", func() {
			r := m.NewRadio("late", geo.Pt(200, 200), 6, 15)
			r.OnReceive = func(rc Receipt) {
				log = append(log, fmt.Sprintf("%d late tx%d ok=%v", k.Now(), rc.Tx.Seq, rc.OK))
			}
			if _, err := m.Transmit(r, 2000, Rates[0], nil); err != nil {
				t.Error(err)
			}
		})
		k.Schedule(3*sim.Millisecond, "detach", func() { m.Detach(radios[5]) })
		k.RunUntil(8 * sim.Millisecond)
		return log
	}
	granular := run(WithRxCutoffDBm(-95), WithGridCellM(25))
	global := run(WithRxCutoffDBm(-95), WithGridCellM(25), WithGlobalInvalidation())
	if len(granular) != len(global) {
		t.Fatalf("receipt counts differ: granular %d vs global %d", len(granular), len(global))
	}
	for i := range granular {
		if granular[i] != global[i] {
			t.Fatalf("receipt %d differs:\ngranular: %s\nglobal:   %s", i, granular[i], global[i])
		}
	}
	if len(granular) == 0 {
		t.Fatal("workload produced no receipts")
	}
}

func TestDetachInFlightLeaksNoCoverRegistrations(t *testing.T) {
	k := sim.New(1)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
	m := NewMedium(k, e, WithRxCutoffDBm(-95))
	a := m.NewRadio("a", geo.Pt(10, 10), 6, 15)
	b := m.NewRadio("b", geo.Pt(20, 10), 6, 15)
	b.OnReceive = func(Receipt) {}
	m.candidatesFor(a)
	m.candidatesFor(b)
	baseline := m.grid.Watchers()
	// Detach a while its frame is still in the air: the finish-time
	// rebuild must not leave a registered cover behind.
	if _, err := m.Transmit(a, 2000, Rates[0], nil); err != nil {
		t.Fatal(err)
	}
	m.Detach(a)
	k.Run()
	if got := m.grid.Watchers(); got >= baseline {
		t.Fatalf("watcher registrations after detach-in-flight = %d, want < baseline %d (a's cover released)", got, baseline)
	}
	// Repeat churn must not grow the registration count.
	stable := m.grid.Watchers()
	for i := 0; i < 5; i++ {
		r := m.NewRadio(fmt.Sprintf("churn%d", i), geo.Pt(15, 15), 6, 15)
		if _, err := m.Transmit(r, 2000, Rates[0], nil); err != nil {
			t.Fatal(err)
		}
		m.Detach(r)
		k.Run()
		if got := m.grid.Watchers(); got != stable {
			t.Fatalf("churn round %d: watchers = %d, want %d", i, got, stable)
		}
	}
}

func TestMidDeliveryMoveDoesNotChangeMembership(t *testing.T) {
	// An OnReceive callback that synchronously moves a third radio
	// across the hearing-range boundary must not change who receives
	// this delivery round — in either invalidation mode. The range
	// decision is frozen when delivery starts.
	run := func(opts ...MediumOption) (cGot int) {
		k := sim.New(1)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 200, 200)))
		m := NewMedium(k, e, opts...)
		// 15 dBm at -60 dBm cutoff: range ~14.7 m.
		a := m.NewRadio("a", geo.Pt(5, 5), 6, 15)
		b := m.NewRadio("b", geo.Pt(10, 5), 6, 15)  // in range, lower ID than c
		c := m.NewRadio("c", geo.Pt(25, 5), 6, 15)  // in a's cover box, out of range
		b.OnReceive = func(Receipt) { c.SetPos(geo.Pt(12, 5)) } // yank c into range
		c.OnReceive = func(Receipt) { cGot++ }
		if _, err := m.Transmit(a, 2000, Rates[0], nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return cGot
	}
	granular := run(WithRxCutoffDBm(-60), WithGridCellM(10))
	global := run(WithRxCutoffDBm(-60), WithGridCellM(10), WithGlobalInvalidation())
	if granular != global {
		t.Fatalf("mid-delivery move changed membership between modes: granular=%d global=%d", granular, global)
	}
	if granular != 0 {
		t.Fatalf("radio out of range at delivery start received %d receipts", granular)
	}
}
