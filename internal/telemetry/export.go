package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// InstrumentSnapshot is one instrument's exported state: identity,
// current value, and (for sampled sim-plane instruments) the sim-time
// series.
type InstrumentSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Count carries the observation count for histograms and host
	// timers (Value is then the histogram N / the timer's total
	// seconds).
	Count  int64   `json:"count,omitempty"`
	Series []Point `json:"series,omitempty"`
}

// Snapshot is a registry's full exported state. Instruments are sorted
// by (name, labels) so two snapshots of identical state render
// byte-identically.
type Snapshot struct {
	// At is the virtual time of the snapshot in nanoseconds.
	At          int64                `json:"at"`
	Instruments []InstrumentSnapshot `json:"instruments"`
}

// Value returns the named instrument's scalar value and whether it
// exists. Label-bearing instruments match on name alone only when the
// name is unique; otherwise the first in sort order wins.
func (s *Snapshot) Value(name string) (float64, bool) {
	for i := range s.Instruments {
		if s.Instruments[i].Name == name {
			return s.Instruments[i].Value, true
		}
	}
	return 0, false
}

// Snapshot exports every instrument. Sim-plane values must be read on
// the kernel goroutine; see the Registry threading contract.
func (r *Registry) Snapshot(atNanos int64) *Snapshot {
	s := &Snapshot{At: atNanos, Instruments: make([]InstrumentSnapshot, 0, len(r.insts))}
	for _, in := range r.insts {
		is := InstrumentSnapshot{
			Name:  in.name,
			Kind:  in.kind.String(),
			Value: r.scalar(in),
		}
		if len(in.labels) > 0 {
			is.Labels = make(map[string]string, len(in.labels))
			for _, l := range in.labels {
				is.Labels[l.Key] = l.Value
			}
		}
		switch in.kind {
		case kindHistogram:
			is.Count = int64(in.hist.N())
		case kindHostTimer:
			is.Count = in.ht.Ops()
		}
		if in.kind.sampled() {
			is.Series = in.series.pts
		}
		s.Instruments = append(s.Instruments, is)
	}
	sort.Slice(s.Instruments, func(i, j int) bool {
		a, b := &s.Instruments[i], &s.Instruments[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return labelKey(a.Labels) < labelKey(b.Labels)
	})
	return s
}

func labelKey(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}

// promName maps a dotted instrument name to its Prometheus form:
// "aroma_" prefix, dots to underscores, anything outside [a-zA-Z0-9_]
// to underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("aroma_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLine is one rendered sample plus the grouping metadata needed for
// # TYPE comments.
type promLine struct {
	metric string // prometheus metric name
	typ    string // counter | gauge | histogram
	labels string // rendered {..} including braces, "" when no labels
	value  string
}

func renderLabels(labels []Label, common []Label, extra ...Label) string {
	merged := make([]Label, 0, len(labels)+len(common)+len(extra))
	merged = append(merged, common...)
	merged = append(merged, labels...)
	merged = append(merged, extra...)
	if len(merged) == 0 {
		return ""
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range merged {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, with common labels (typically world="id") merged
// into every sample. Sim-plane values must be read on the kernel
// goroutine; the daemon routes scrapes through each world's command
// loop.
func (r *Registry) WritePrometheus(w io.Writer, common ...Label) error {
	lines := make([]promLine, 0, len(r.insts)+8)
	for _, in := range r.insts {
		pn := promName(in.name)
		switch in.kind {
		case kindCounter, kindCounterFunc, kindHostCounter:
			lines = append(lines, promLine{pn, "counter", renderLabels(in.labels, common), formatValue(r.scalar(in))})
		case kindGauge, kindGaugeFunc:
			lines = append(lines, promLine{pn, "gauge", renderLabels(in.labels, common), formatValue(r.scalar(in))})
		case kindHostTimer:
			lines = append(lines,
				promLine{pn + "_seconds_total", "counter", renderLabels(in.labels, common), fmt.Sprintf("%g", in.ht.Seconds())},
				promLine{pn + "_ops_total", "counter", renderLabels(in.labels, common), formatValue(float64(in.ht.Ops()))})
		case kindHistogram:
			h := in.hist
			n := h.NumBuckets()
			width := (in.hi - in.lo) / float64(n)
			under, _ := h.OutOfRange()
			cum := under // observations below lo are <= every bound
			for i := 0; i < n; i++ {
				cum += h.Bucket(i)
				le := L("le", formatValue(in.lo+float64(i+1)*width))
				lines = append(lines, promLine{pn + "_bucket", "histogram", renderLabels(in.labels, common, le), formatValue(float64(cum))})
			}
			lines = append(lines,
				promLine{pn + "_bucket", "histogram", renderLabels(in.labels, common, L("le", "+Inf")), formatValue(float64(h.N()))},
				promLine{pn + "_count", "histogram", renderLabels(in.labels, common), formatValue(float64(h.N()))})
		}
	}
	// Stable output: sort by metric name then labels, and emit one
	// # TYPE comment per metric name group.
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].metric != lines[j].metric {
			return lines[i].metric < lines[j].metric
		}
		return lines[i].labels < lines[j].labels
	})
	var b strings.Builder
	prev := ""
	for _, ln := range lines {
		if ln.metric != prev {
			// Histogram series (_bucket/_count) share one conceptual
			// family but render as separate metric names; typing each
			// as its own group keeps the writer trivial and every
			// scraper accepts it.
			fmt.Fprintf(&b, "# TYPE %s %s\n", ln.metric, typeFor(ln))
			prev = ln.metric
		}
		b.WriteString(ln.metric)
		b.WriteString(ln.labels)
		b.WriteByte(' ')
		b.WriteString(ln.value)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// typeFor maps histogram sub-series to scrapable primitive types; a
// cumulative _bucket/_count pair emitted as counters is valid for any
// Prometheus server, while a true "histogram" TYPE would require the
// un-suffixed family name.
func typeFor(ln promLine) string {
	if ln.typ == "histogram" {
		return "counter"
	}
	return ln.typ
}
