// Package telemetry is the per-world instrument registry behind
// World.Telemetry, the aromad /metrics surface, and the sweep metrics
// artifacts.
//
// # Two planes
//
// Instruments live on exactly one of two planes, and the plane decides
// every contract that matters:
//
//   - Sim-plane instruments (Counter, Gauge, Histogram, CounterFunc,
//     GaugeFunc) describe the simulated system — frames sent, backoffs,
//     pool occupancy. They are updated and read on the kernel goroutine
//     only, advance only with virtual time, and are sampled into
//     deterministic sim-time series by a kernel-driven sampler. Two runs
//     of the same seed produce bit-identical sim-plane values and
//     series.
//   - Host-plane instruments (HostCounter, HostTimer) describe the
//     machine running the simulation — wall-clock evaluate/commit
//     durations, SSE drops. They are atomics, safe from any goroutine,
//     and are never sampled into sim-time series.
//
// Neither plane is part of ExportState, Digest, or checkpoint
// Provenance: enabling telemetry cannot perturb a digest, and restoring
// a snapshot recomputes sim-plane values by replay rather than
// deserializing them.
//
// # Hot-path discipline
//
// Counter/Gauge/Histogram handles are dense-slot references into the
// registry's backing arrays: an update is one bounds-checked array
// write, no map lookups and no allocations (BenchmarkTelemetryHotPath
// gates 0 allocs/op). The zero-value handle is inert, so model code
// updates unconditionally and worlds without telemetry pay only a nil
// check. Stats that substrates already keep as plain fields are read
// lazily through CounterFunc/GaugeFunc at sample/export time instead of
// being double-counted on the hot path.
//
// # Naming scheme
//
// Names are dotted, lowercase, with the Prometheus unit conventions
// applied to the leaf: monotonically increasing counts end in "_total"
// (enforced at registration), gauges are bare nouns. The Prometheus
// exporter maps "kernel.steps_total" to "aroma_kernel_steps_total";
// labels distinguish instruments sharing a name (per-lane depth,
// per-reason fallbacks).
package telemetry

import (
	"sort"
	"sync/atomic"
	"time"

	"aroma/internal/metrics"
)

// maxPoints bounds every sim-time series. When a series fills, it is
// decimated deterministically: every other retained point is dropped
// and the effective sampling stride doubles, so a long run keeps a
// bounded, evenly spaced sketch whose contents depend only on the
// sample sequence (never on wall time or memory pressure).
const maxPoints = 2048

// Label is one name=value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindHostCounter
	kindHostTimer
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindHostCounter:
		return "host_counter"
	case kindHostTimer:
		return "host_timer"
	}
	return "unknown"
}

// sampled reports whether the kind is recorded into sim-time series.
func (k kind) sampled() bool {
	switch k {
	case kindCounter, kindGauge, kindCounterFunc, kindGaugeFunc:
		return true
	}
	return false
}

// Point is one sampled (sim-time, value) pair. T is virtual nanoseconds
// since the start of the simulation.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// series is a bounded, deterministically decimated point list.
type series struct {
	pts    []Point
	stride uint64 // record every stride-th sample; doubles on decimation
	phase  uint64 // samples seen modulo nothing; compared against stride
}

func (s *series) add(t int64, v float64) {
	if s.stride == 0 {
		s.stride = 1
	}
	s.phase++
	if s.phase%s.stride != 0 {
		return
	}
	if len(s.pts) >= maxPoints {
		// Keep odd positions: with the stride doubling below, the
		// retained points are exactly the samples a fresh series with
		// the doubled stride would have kept.
		kept := s.pts[:0]
		for i := 1; i < len(s.pts); i += 2 {
			kept = append(kept, s.pts[i])
		}
		s.pts = kept
		s.stride *= 2
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// instrument is one registered metric.
type instrument struct {
	name   string
	labels []Label // sorted by key
	kind   kind
	slot   uint32             // counters/gauges: index into the dense arrays
	hist   *metrics.Histogram // kindHistogram
	lo, hi float64            // histogram bounds (for bucket export)
	cfn    func() uint64      // kindCounterFunc
	gfn    func() float64     // kindGaugeFunc
	hc     *HostCounter
	ht     *HostTimer
	series series
}

// value returns the instrument's current scalar value. Sim-plane kinds
// must be read on the kernel goroutine; host kinds are atomic.
func (in *instrument) value() float64 {
	switch in.kind {
	case kindCounter:
		return 0 // resolved by Registry (needs the dense array)
	case kindHistogram:
		return float64(in.hist.N())
	case kindCounterFunc:
		return float64(in.cfn())
	case kindGaugeFunc:
		return in.gfn()
	case kindHostCounter:
		return float64(in.hc.Load())
	case kindHostTimer:
		return in.ht.Seconds()
	}
	return 0
}

// Registry is a per-world instrument registry.
//
// Registration happens at world construction, on one goroutine, before
// the world runs. Sim-plane updates, Sample, and the exporters must run
// on the kernel goroutine (the daemon routes scrapes through each
// world's command loop); host-plane instruments are safe from any
// goroutine. The registry itself takes no locks — the threading
// contract above is the synchronization.
type Registry struct {
	counters []uint64
	gauges   []float64
	insts    []*instrument
	names    map[string]bool // identity keys, duplicate registration guard
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// identity renders name plus sorted labels; two instruments may share a
// name only when their label sets differ.
func identity(name string, labels []Label) string {
	id := name
	for _, l := range labels {
		id += "\x00" + l.Key + "\x01" + l.Value
	}
	return id
}

func (r *Registry) register(in *instrument) *instrument {
	if in.name == "" {
		panic("telemetry: empty instrument name")
	}
	sort.Slice(in.labels, func(i, j int) bool { return in.labels[i].Key < in.labels[j].Key })
	switch in.kind {
	case kindCounter, kindCounterFunc, kindHostCounter:
		if !hasSuffix(in.name, "_total") {
			panic("telemetry: counter " + in.name + " must end in _total")
		}
	case kindHostTimer:
		if hasSuffix(in.name, "_total") {
			panic("telemetry: timer " + in.name + " must not end in _total (it expands to _seconds_total/_ops_total)")
		}
	}
	id := identity(in.name, in.labels)
	if r.names[id] {
		panic("telemetry: duplicate instrument " + id)
	}
	r.names[id] = true
	r.insts = append(r.insts, in)
	return in
}

// hasSuffix avoids importing strings into the hot-path file's mental
// model; it is strings.HasSuffix.
func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// Counter registers a sim-plane counter and returns its update handle.
// The name must end in "_total".
func (r *Registry) Counter(name string, labels ...Label) Counter {
	slot := uint32(len(r.counters))
	r.counters = append(r.counters, 0)
	r.register(&instrument{name: name, labels: labels, kind: kindCounter, slot: slot})
	return Counter{r: r, slot: slot}
}

// Gauge registers a sim-plane gauge and returns its update handle.
func (r *Registry) Gauge(name string, labels ...Label) Gauge {
	slot := uint32(len(r.gauges))
	r.gauges = append(r.gauges, 0)
	r.register(&instrument{name: name, labels: labels, kind: kindGauge, slot: slot})
	return Gauge{r: r, slot: slot}
}

// Histogram registers a sim-plane histogram with nbuckets equal-width
// buckets over [lo, hi) and returns its update handle.
func (r *Registry) Histogram(name string, lo, hi float64, nbuckets int, labels ...Label) Histogram {
	h := metrics.NewHistogram(lo, hi, nbuckets)
	r.register(&instrument{name: name, labels: labels, kind: kindHistogram, hist: h, lo: lo, hi: hi})
	return Histogram{h: h}
}

// CounterFunc registers a sim-plane counter whose value is read from fn
// at sample and export time. Use it for stats a substrate already keeps
// as a plain field — the hot path pays nothing. fn runs on the kernel
// goroutine. The name must end in "_total".
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	r.register(&instrument{name: name, labels: labels, kind: kindCounterFunc, cfn: fn})
}

// GaugeFunc registers a sim-plane gauge read from fn at sample and
// export time. fn runs on the kernel goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.register(&instrument{name: name, labels: labels, kind: kindGaugeFunc, gfn: fn})
}

// HostCounter registers a host-plane counter: an atomic, safe from any
// goroutine, excluded from sim-time series. The name must end in
// "_total".
func (r *Registry) HostCounter(name string, labels ...Label) *HostCounter {
	hc := &HostCounter{}
	r.register(&instrument{name: name, labels: labels, kind: kindHostCounter, hc: hc})
	return hc
}

// HostTimer registers a host-plane wall-clock duration accumulator. It
// exports as two Prometheus counters, <name>_seconds_total and
// <name>_ops_total. The name must not end in "_total".
func (r *Registry) HostTimer(name string, labels ...Label) *HostTimer {
	ht := &HostTimer{}
	r.register(&instrument{name: name, labels: labels, kind: kindHostTimer, ht: ht})
	return ht
}

// Sample records the current value of every sampled sim-plane
// instrument into its sim-time series at virtual time atNanos. It must
// run on the kernel goroutine; the world's kernel sampler calls it on a
// fixed virtual-time period.
func (r *Registry) Sample(atNanos int64) {
	for _, in := range r.insts {
		if !in.kind.sampled() {
			continue
		}
		in.series.add(atNanos, r.scalar(in))
	}
}

// scalar resolves an instrument's current value including the
// dense-array kinds the instrument itself cannot reach.
func (r *Registry) scalar(in *instrument) float64 {
	switch in.kind {
	case kindCounter:
		return float64(r.counters[in.slot])
	case kindGauge:
		return r.gauges[in.slot]
	}
	return in.value()
}

// Counter is a dense-slot handle to a sim-plane counter. The zero value
// is inert: updates are no-ops, so model code can update
// unconditionally whether or not telemetry is enabled.
type Counter struct {
	r    *Registry
	slot uint32
}

// Inc adds one.
func (c Counter) Inc() {
	if c.r != nil {
		c.r.counters[c.slot]++
	}
}

// Add adds n.
func (c Counter) Add(n uint64) {
	if c.r != nil {
		c.r.counters[c.slot] += n
	}
}

// Value returns the current count (0 for the zero handle).
func (c Counter) Value() uint64 {
	if c.r == nil {
		return 0
	}
	return c.r.counters[c.slot]
}

// Gauge is a dense-slot handle to a sim-plane gauge. The zero value is
// inert.
type Gauge struct {
	r    *Registry
	slot uint32
}

// Set replaces the gauge value.
func (g Gauge) Set(v float64) {
	if g.r != nil {
		g.r.gauges[g.slot] = v
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g Gauge) Add(d float64) {
	if g.r != nil {
		g.r.gauges[g.slot] += d
	}
}

// Value returns the current gauge value (0 for the zero handle).
func (g Gauge) Value() float64 {
	if g.r == nil {
		return 0
	}
	return g.r.gauges[g.slot]
}

// Histogram is a handle to a sim-plane histogram. The zero value is
// inert.
type Histogram struct {
	h *metrics.Histogram
}

// Observe records one observation.
func (h Histogram) Observe(x float64) {
	if h.h != nil {
		h.h.Observe(x)
	}
}

// HostCounter is a host-plane atomic counter.
type HostCounter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *HostCounter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *HostCounter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *HostCounter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// HostTimer accumulates wall-clock durations: total time and
// observation count, both atomic.
type HostTimer struct {
	ops   atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration.
func (t *HostTimer) Observe(d time.Duration) {
	if t != nil {
		t.ops.Add(1)
		t.nanos.Add(int64(d))
	}
}

// Ops returns the number of observations.
func (t *HostTimer) Ops() int64 {
	if t == nil {
		return 0
	}
	return t.ops.Load()
}

// Seconds returns the accumulated duration in seconds.
func (t *HostTimer) Seconds() float64 {
	if t == nil {
		return 0
	}
	return float64(t.nanos.Load()) / 1e9
}
