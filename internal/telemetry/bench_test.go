package telemetry

import "testing"

// BenchmarkTelemetryHotPath pins the zero-allocation contract on the
// sim-plane update path: a counter increment, a gauge store, and a
// histogram observation are array writes through dense-slot handles —
// no maps, no interface boxing, no allocation. The benchgate baseline
// gates allocs/op at 0.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := New()
	c := r.Counter("bench.events_total")
	g := r.Gauge("bench.depth")
	h := r.Histogram("bench.lat", 0, 100, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i % 100))
	}
	if c.Value() != uint64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkTelemetryDisabledHotPath measures the cost model code pays
// when telemetry is off: updates through zero-value handles, which must
// reduce to a nil check. Also alloc-gated at 0.
func BenchmarkTelemetryDisabledHotPath(b *testing.B) {
	var c Counter
	var g Gauge
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i % 100))
	}
}

// BenchmarkTelemetrySample measures one sampler tick over a registry of
// representative size (32 instruments). Steady state appends to
// pre-grown series slices; the occasional slice growth is amortized.
func BenchmarkTelemetrySample(b *testing.B) {
	r := New()
	for i := 0; i < 16; i++ {
		r.Counter("bench.c_total", L("i", string(rune('a'+i))))
	}
	for i := 0; i < 16; i++ {
		r.Gauge("bench.g", L("i", string(rune('a'+i))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sample(int64(i))
	}
}
