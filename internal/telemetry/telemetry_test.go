package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("kernel.steps_total")
	g := r.Gauge("kernel.pending")
	h := r.Histogram("radio.snr_db", 0, 40, 8)

	c.Inc()
	c.Add(4)
	g.Set(3)
	g.Add(-1)
	h.Observe(10)
	h.Observe(50) // overflow

	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
	snap := r.Snapshot(0)
	if v, ok := snap.Value("kernel.steps_total"); !ok || v != 5 {
		t.Fatalf("snapshot counter = %g ok=%v", v, ok)
	}
	if v, ok := snap.Value("radio.snr_db"); !ok || v != 2 {
		t.Fatalf("snapshot histogram N = %g ok=%v", v, ok)
	}
}

func TestZeroValueHandlesAreInert(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("zero handles mutated state: %d %g", c.Value(), g.Value())
	}
	var hc *HostCounter
	var ht *HostTimer
	hc.Inc()
	ht.Observe(time.Second)
	if hc.Load() != 0 || ht.Ops() != 0 || ht.Seconds() != 0 {
		t.Fatalf("nil host instruments mutated state")
	}
}

func TestCounterNamingEnforced(t *testing.T) {
	r := New()
	for _, f := range []func(){
		func() { r.Counter("kernel.steps") },                               // counter without _total
		func() { r.CounterFunc("radio.sent", func() uint64 { return 0 }) }, // ditto
		func() { r.HostCounter("host.drops") },                             // ditto
		func() { r.HostTimer("host.eval_total") },                          // timer with _total
		func() { r.Counter("") },                                           // empty name
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("registration accepted an invalid name")
				}
			}()
			f()
		}()
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("a.b_total", L("x", "1"))
	r.Counter("a.b_total", L("x", "2")) // different labels: fine
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate identity accepted")
		}
	}()
	r.Counter("a.b_total", L("x", "1"))
}

func TestFuncInstrumentsReadLazily(t *testing.T) {
	r := New()
	var sent uint64
	r.CounterFunc("radio.frames_sent_total", func() uint64 { return sent })
	r.GaugeFunc("radio.active", func() float64 { return float64(sent) / 2 })
	sent = 10
	snap := r.Snapshot(0)
	if v, _ := snap.Value("radio.frames_sent_total"); v != 10 {
		t.Fatalf("counter func = %g, want 10", v)
	}
	if v, _ := snap.Value("radio.active"); v != 5 {
		t.Fatalf("gauge func = %g, want 5", v)
	}
}

func TestSampleBuildsSeries(t *testing.T) {
	r := New()
	c := r.Counter("k.n_total")
	r.HostCounter("host.x_total") // host plane: never sampled
	for i := 1; i <= 3; i++ {
		c.Inc()
		r.Sample(int64(i) * 100)
	}
	snap := r.Snapshot(300)
	var got []Point
	for _, in := range snap.Instruments {
		if in.Name == "k.n_total" {
			got = in.Series
		}
		if in.Name == "host.x_total" && in.Series != nil {
			t.Fatalf("host instrument grew a sim-time series")
		}
	}
	want := []Point{{100, 1}, {200, 2}, {300, 3}}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeriesDecimationIsDeterministicAndBounded(t *testing.T) {
	run := func() []Point {
		r := New()
		c := r.Counter("k.n_total")
		for i := 1; i <= 3*maxPoints; i++ {
			c.Inc()
			r.Sample(int64(i))
		}
		snap := r.Snapshot(0)
		for _, in := range snap.Instruments {
			if in.Name == "k.n_total" {
				return in.Series
			}
		}
		return nil
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) > maxPoints {
		t.Fatalf("series length %d out of bounds (max %d)", len(a), maxPoints)
	}
	if len(a) != len(b) {
		t.Fatalf("decimation nondeterministic: %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decimation nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// After decimation the retained points must still be in ascending
	// time order and span the run.
	for i := 1; i < len(a); i++ {
		if a[i].T <= a[i-1].T {
			t.Fatalf("series time not ascending at %d: %v then %v", i, a[i-1], a[i])
		}
	}
	if last := a[len(a)-1]; last.T != int64(3*maxPoints) {
		t.Fatalf("last retained sample T = %d, want %d", last.T, 3*maxPoints)
	}
}

func TestSnapshotJSONAndOrdering(t *testing.T) {
	r := New()
	r.Gauge("b.depth", L("lane", "1"))
	r.Gauge("b.depth", L("lane", "0"))
	r.Counter("a.n_total")
	snap := r.Snapshot(42)
	if snap.At != 42 {
		t.Fatalf("At = %d", snap.At)
	}
	names := make([]string, 0, 3)
	for _, in := range snap.Instruments {
		names = append(names, in.Name+"/"+in.Labels["lane"])
	}
	want := []string{"a.n_total/", "b.depth/0", "b.depth/1"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	c := r.Counter("kernel.steps_total")
	c.Add(7)
	g := r.Gauge("radio.active")
	g.Set(2.5)
	r.Counter("radio.shard_fallback_total", L("reason", "small_fanout"))
	h := r.Histogram("mac.backoff_slots", 0, 8, 4)
	h.Observe(1)
	h.Observe(9) // over
	hc := r.HostCounter("host.sse_dropped_total")
	hc.Add(3)
	ht := r.HostTimer("host.shard_eval")
	ht.Observe(1500 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, L("world", "w1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE aroma_kernel_steps_total counter",
		`aroma_kernel_steps_total{world="w1"} 7`,
		`aroma_radio_active{world="w1"} 2.5`,
		`aroma_radio_shard_fallback_total{reason="small_fanout",world="w1"} 0`,
		`aroma_mac_backoff_slots_bucket{le="+Inf",world="w1"} 2`,
		`aroma_mac_backoff_slots_count{world="w1"} 2`,
		`aroma_host_sse_dropped_total{world="w1"} 3`,
		`aroma_host_shard_eval_seconds_total{world="w1"} 1.5`,
		`aroma_host_shard_eval_ops_total{world="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Two identical exports must render byte-identically.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2, L("world", "w1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if out != b2.String() {
		t.Fatalf("prometheus output not stable across renders")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("x.lat", 0, 4, 4)
	for _, v := range []float64{-1, 0.5, 1.5, 1.6, 3.9, 10} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`aroma_x_lat_bucket{le="1"} 2`,    // underflow + 0.5
		`aroma_x_lat_bucket{le="2"} 4`,    // + 1.5, 1.6
		`aroma_x_lat_bucket{le="3"} 4`,    //
		`aroma_x_lat_bucket{le="4"} 5`,    // + 3.9
		`aroma_x_lat_bucket{le="+Inf"} 6`, // + overflow
		`aroma_x_lat_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestHotPathZeroAllocs is the hard zero-allocation gate on the
// sim-plane update path — exact, unlike the benchgate allocs jitter
// floor. Handle updates (live and zero-value) must be allocation-free
// or instrumented model code would churn the GC on every event.
func TestHotPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot.events_total")
	g := r.Gauge("hot.depth")
	h := r.Histogram("hot.lat", 0, 100, 32)
	var zc Counter
	var zg Gauge
	var zh Histogram
	i := 0.0
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(i)
		h.Observe(i)
		zc.Inc()
		zg.Set(i)
		zh.Observe(i)
		i++
	}); n != 0 {
		t.Fatalf("hot-path allocs/op = %v, want 0", n)
	}
}
