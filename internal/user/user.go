// Package user makes the human column of the paper's model executable.
// The paper's central claim is that "human beings are an integral part of
// pervasive computing and could not just be abstracted away"; it places
// the user at every layer:
//
//   - Physical: the body and "the signals it is capable of sending and
//     receiving" (Physiology),
//   - Resource: developed skills and abilities — language, education,
//     temperament, frustration tolerance (Faculties),
//   - Abstract: mental models whose "reasoning and expectations" must
//     stay consistent with application logic and state (MentalModel),
//   - Intentional: goals the system's design purpose must harmonize with
//     (Goal, and core.DesignPurpose on the device side).
//
// Frustration is a first-class dynamic quantity: interactions that
// frustrate faculties raise it; time decays it; crossing the tolerance
// threshold makes the user abandon the system — the paper's prediction
// "if this burden is greater than what users are willing to bear in
// meeting their goals, then the system will not be used."
package user

import (
	"fmt"
	"math"
	"sort"

	"aroma/internal/geo"
	"aroma/internal/sim"
)

// Physiology is the physical-layer user: body position and signal I/O.
type Physiology struct {
	// SpeechLevelDB is the user's speech level at 1 m (typ. 55–70).
	SpeechLevelDB float64
	// HearingFloorDB is the quietest sound level the user can attend to.
	HearingFloorDB float64
	// MinLegiblePx is the smallest on-screen feature (pixels) the user
	// can read at arm's length; higher means worse vision.
	MinLegiblePx int
	// ReachM is how far the user can physically reach.
	ReachM float64
	// SpeedMPS is walking speed for mobility.
	SpeedMPS float64
}

// DefaultPhysiology returns a typical adult.
func DefaultPhysiology() Physiology {
	return Physiology{
		SpeechLevelDB:  62,
		HearingFloorDB: 20,
		MinLegiblePx:   8,
		ReachM:         0.8,
		SpeedMPS:       1.3,
	}
}

// Faculties is the resource-layer user: what developers can count on.
type Faculties struct {
	// Languages the user can operate a UI in.
	Languages []string
	// TechSkill in [0,1]: ability to cope with "arcane features".
	TechSkill float64
	// Training maps system names to familiarity in [0,1].
	Training map[string]float64
	// FrustrationTolerance in (0,1]: the abandonment threshold.
	FrustrationTolerance float64
	// PatienceLimit is the longest UI response latency the user accepts
	// without frustration.
	PatienceLimit sim.Time
}

// Speaks reports whether the user can operate in the given language.
func (f Faculties) Speaks(lang string) bool {
	for _, l := range f.Languages {
		if l == lang {
			return true
		}
	}
	return false
}

// TrainingFor returns the user's familiarity with a named system.
func (f Faculties) TrainingFor(system string) float64 {
	return f.Training[system]
}

// ResearcherFaculties models the paper's intended audience: "a group of
// computer scientists performing pervasive computing research". They can
// fix the wireless network, the Linux adapter and the lookup service.
func ResearcherFaculties() Faculties {
	return Faculties{
		Languages:            []string{"en"},
		TechSkill:            0.95,
		Training:             map[string]float64{"smart-projector": 0.9, "vnc": 0.9, "jini": 0.9},
		FrustrationTolerance: 0.9,
		PatienceLimit:        10 * sim.Second,
	}
}

// CasualFaculties models the paper's "casual user expecting a
// commercial-grade product".
func CasualFaculties() Faculties {
	return Faculties{
		Languages:            []string{"en"},
		TechSkill:            0.35,
		Training:             map[string]float64{},
		FrustrationTolerance: 0.4,
		PatienceLimit:        2 * sim.Second,
	}
}

// Goal is an intentional-layer user goal.
type Goal struct {
	Name string
	// Needs lists the capabilities required to meet the goal.
	Needs []string
	// Importance weighs the goal in harmony scoring.
	Importance float64
}

// MentalModel is the abstract-layer user: a set of beliefs about the
// system's state that must stay consistent with reality.
type MentalModel struct {
	beliefs map[string]string
	// Surprises counts belief/reality divergences observed.
	Surprises uint64
}

// NewMentalModel creates an empty belief store.
func NewMentalModel() *MentalModel {
	return &MentalModel{beliefs: make(map[string]string)}
}

// Believe records a belief about a proposition.
func (m *MentalModel) Believe(prop, value string) { m.beliefs[prop] = value }

// Belief returns the believed value and whether the user holds one.
func (m *MentalModel) Belief(prop string) (string, bool) {
	v, ok := m.beliefs[prop]
	return v, ok
}

// Forget drops a belief.
func (m *MentalModel) Forget(prop string) { delete(m.beliefs, prop) }

// Len returns the number of held beliefs.
func (m *MentalModel) Len() int { return len(m.beliefs) }

// Observe reconciles a belief with observed reality. If the user held a
// different belief, it counts as a surprise — the consistency violation
// of the paper's abstract layer — and the belief is corrected.
// It returns true when the observation was surprising.
func (m *MentalModel) Observe(prop, actual string) bool {
	prev, held := m.beliefs[prop]
	m.beliefs[prop] = actual
	if held && prev != actual {
		m.Surprises++
		return true
	}
	return false
}

// ConsistencyWith scores the model against an actual state map: the
// fraction of judgeable beliefs that match reality. Beliefs about
// propositions the state map does not export are unjudgeable and are
// skipped (a belief about the projector cannot contradict the laptop).
// With nothing to judge the score is 1 — no expectations, no
// inconsistency.
func (m *MentalModel) ConsistencyWith(actual map[string]string) float64 {
	judged, match := 0, 0
	for prop, believed := range m.beliefs {
		actualVal, known := actual[prop]
		if !known {
			continue
		}
		judged++
		if actualVal == believed {
			match++
		}
	}
	if judged == 0 {
		return 1
	}
	return float64(match) / float64(judged)
}

// Inconsistencies lists held beliefs that contradict the actual state
// (skipping unjudgeable propositions), sorted for determinism.
func (m *MentalModel) Inconsistencies(actual map[string]string) []string {
	var out []string
	for prop, believed := range m.beliefs {
		actualVal, known := actual[prop]
		if known && actualVal != believed {
			out = append(out, fmt.Sprintf("%s: believed %q, actually %q", prop, believed, actualVal))
		}
	}
	sort.Strings(out)
	return out
}

// User is a complete five-layer human participant.
type User struct {
	Name string
	Pos  geo.Point

	Physiology Physiology
	Faculties  Faculties
	Mental     *MentalModel
	Goals      []Goal

	kernel      *sim.Kernel
	frustration float64
	lastDecay   sim.Time
	abandoned   bool

	// FrustrationHalfLife controls decay: frustration halves every such
	// period of calm. Zero disables decay.
	FrustrationHalfLife sim.Time

	// OnAbandon fires once when frustration first crosses tolerance.
	OnAbandon func(cause string)

	// Stats
	FrustrationEvents uint64
}

// New creates a user with default physiology and an empty mental model.
func New(k *sim.Kernel, name string, fac Faculties) *User {
	return &User{
		Name:                name,
		Physiology:          DefaultPhysiology(),
		Faculties:           fac,
		Mental:              NewMentalModel(),
		kernel:              k,
		FrustrationHalfLife: 5 * sim.Minute,
	}
}

// Frustration returns the current frustration level in [0,1], applying
// any pending time decay.
func (u *User) Frustration() float64 {
	u.decay()
	return u.frustration
}

// Abandoned reports whether the user has given up on the system.
func (u *User) Abandoned() bool { return u.abandoned }

// decay applies exponential decay since the last event.
func (u *User) decay() {
	if u.FrustrationHalfLife <= 0 || u.frustration == 0 {
		u.lastDecay = u.kernel.Now()
		return
	}
	dt := u.kernel.Now() - u.lastDecay
	if dt <= 0 {
		return
	}
	halves := float64(dt) / float64(u.FrustrationHalfLife)
	u.frustration *= math.Exp2(-halves)
	if u.frustration < 1e-6 {
		u.frustration = 0
	}
	u.lastDecay = u.kernel.Now()
}

// Frustrate raises frustration by delta (clamped to [0,1]) for the given
// cause. Crossing the tolerance threshold abandons the system.
func (u *User) Frustrate(delta float64, cause string) {
	if u.abandoned || delta <= 0 {
		return
	}
	u.decay()
	u.frustration += delta
	if u.frustration > 1 {
		u.frustration = 1
	}
	u.FrustrationEvents++
	if u.frustration >= u.Faculties.FrustrationTolerance {
		u.abandoned = true
		if u.OnAbandon != nil {
			u.OnAbandon(cause)
		}
	}
}

// Calm resets frustration and un-abandons (a new session, a new day).
func (u *User) Calm() {
	u.frustration = 0
	u.abandoned = false
	u.lastDecay = u.kernel.Now()
}

// ExperienceLatency reacts to a UI response time: latency beyond the
// patience limit frustrates proportionally to the excess.
func (u *User) ExperienceLatency(l sim.Time, what string) {
	if l <= u.Faculties.PatienceLimit {
		return
	}
	excess := float64(l-u.Faculties.PatienceLimit) / float64(u.Faculties.PatienceLimit)
	delta := 0.05 * excess
	if delta > 0.5 {
		delta = 0.5
	}
	u.Frustrate(delta, fmt.Sprintf("slow response from %s (%v)", what, l))
}

// GoalImportanceTotal sums the importance of all goals.
func (u *User) GoalImportanceTotal() float64 {
	total := 0.0
	for _, g := range u.Goals {
		total += g.Importance
	}
	return total
}

// String summarizes the user.
func (u *User) String() string {
	state := "engaged"
	if u.abandoned {
		state = "abandoned"
	}
	return fmt.Sprintf("user(%s): frustration %.2f/%.2f, %s", u.Name, u.frustration, u.Faculties.FrustrationTolerance, state)
}
