package user

import (
	"testing"

	"aroma/internal/sim"
)

// projectorProcedure mirrors the paper's Smart Projector discipline: the
// VNC server must be started on the laptop, then both clients, before
// projection works.
func projectorProcedure() Procedure {
	return Procedure{
		System: "smart-projector",
		Steps: []Step{
			{
				Name:       "start-vnc-server",
				Effects:    []string{"vnc.running"},
				Difficulty: 0.5,
				Latency:    2 * sim.Second,
			},
			{
				Name:       "start-projection-client",
				Preconds:   []string{"vnc.running"},
				Effects:    []string{"projection.client"},
				Difficulty: 0.4,
				Latency:    sim.Second,
			},
			{
				Name:       "start-control-client",
				Effects:    []string{"control.client"},
				Difficulty: 0.4,
				Latency:    sim.Second,
			},
			{
				Name:       "project",
				Preconds:   []string{"projection.client", "control.client"},
				Effects:    []string{"projecting"},
				Difficulty: 0.2,
				Latency:    sim.Second,
			},
		},
		GoalProp: "projecting",
	}
}

func TestExpertSucceedsFirstTry(t *testing.T) {
	k := sim.New(7)
	u := New(k, "expert", ResearcherFaculties())
	proc := projectorProcedure()
	u.LearnAll(proc)
	res := u.Attempt(proc, NewWorld(), 5)
	if !res.Success {
		t.Fatalf("expert failed: %+v", res)
	}
	if res.Abandoned {
		t.Fatal("expert abandoned")
	}
	if res.Failures > 1 {
		t.Fatalf("expert failures = %d", res.Failures)
	}
}

func TestNoviceStrugglesMoreThanExpert(t *testing.T) {
	proc := projectorProcedure()
	runOne := func(expert bool, seed int64) AttemptResult {
		k := sim.New(seed)
		var u *User
		if expert {
			u = New(k, "e", ResearcherFaculties())
			u.LearnAll(proc)
		} else {
			u = New(k, "n", CasualFaculties())
			// The novice's model: "I press project" — the paper's casual
			// user has no idea about VNC servers or dual clients.
			u.LearnSteps(proc, "project")
		}
		return u.Attempt(proc, NewWorld(), 10)
	}
	expertFails, noviceFails := 0, 0
	noviceAbandons := 0
	for seed := int64(0); seed < 40; seed++ {
		e := runOne(true, seed)
		n := runOne(false, seed)
		expertFails += e.Failures
		noviceFails += n.Failures
		if n.Abandoned {
			noviceAbandons++
		}
	}
	if noviceFails <= expertFails {
		t.Fatalf("novice failures %d should exceed expert %d", noviceFails, expertFails)
	}
	if noviceAbandons == 0 {
		t.Fatal("no novice ever abandoned — conceptual burden not biting")
	}
}

func TestNoviceLearnsAcrossRetries(t *testing.T) {
	proc := projectorProcedure()
	k := sim.New(11)
	u := New(k, "learner", Faculties{
		Languages:            []string{"en"},
		TechSkill:            0.8, // skilled but untrained
		Training:             map[string]float64{},
		FrustrationTolerance: 1.0, // will not abandon
		PatienceLimit:        sim.Minute,
	})
	u.LearnSteps(proc, "project")
	res := u.Attempt(proc, NewWorld(), 20)
	if !res.Success {
		t.Fatalf("persistent skilled user should eventually succeed: %+v", res)
	}
	if res.Failures == 0 {
		t.Fatal("learning path should include failures")
	}
	plan := u.PlanBeliefs(proc)
	if len(plan) < 3 {
		t.Fatalf("user should have learned the prerequisites: %v", plan)
	}
}

func TestStreamlinedDesignReducesBurden(t *testing.T) {
	// The paper's proposed abstract-layer improvement: integrate service
	// discovery so one step does everything (auto-start both clients and
	// the server).
	streamlined := Procedure{
		System: "smart-projector-v2",
		Steps: []Step{
			{
				Name:       "press-project",
				Effects:    []string{"vnc.running", "projection.client", "control.client", "projecting"},
				Difficulty: 0.1,
				Latency:    2 * sim.Second,
			},
		},
		GoalProp: "projecting",
	}
	original := projectorProcedure()
	if streamlined.TotalDifficulty() >= original.TotalDifficulty() {
		t.Fatal("streamlined design should have lower total difficulty")
	}
	abandons := 0
	for seed := int64(0); seed < 40; seed++ {
		k := sim.New(seed)
		u := New(k, "casual", CasualFaculties())
		u.LearnSteps(streamlined, "press-project")
		res := u.Attempt(streamlined, NewWorld(), 10)
		if res.Abandoned {
			abandons++
		} else if !res.Success {
			t.Fatalf("seed %d: neither success nor abandonment: %+v", seed, res)
		}
	}
	if abandons > 4 {
		t.Fatalf("streamlined design abandoned %d/40 times", abandons)
	}
}

func TestWorldOperations(t *testing.T) {
	w := NewWorld()
	if w.True("x") || w.Get("x") != "" {
		t.Fatal("fresh world not empty")
	}
	w.Set("x", "true")
	if !w.True("x") {
		t.Fatal("Set failed")
	}
	snap := w.Snapshot()
	w.Set("x", "false")
	if snap["x"] != "true" {
		t.Fatal("snapshot not a copy")
	}
}

func TestUndoesClearPropositions(t *testing.T) {
	proc := Procedure{
		System: "s",
		Steps: []Step{
			{Name: "open", Effects: []string{"session.open"}},
			{Name: "close", Preconds: []string{"session.open"}, Undoes: []string{"session.open"}, Effects: []string{"done"}},
		},
		GoalProp: "done",
	}
	k := sim.New(3)
	u := New(k, "x", ResearcherFaculties())
	u.LearnAll(proc)
	w := NewWorld()
	res := u.Attempt(proc, w, 3)
	if !res.Success {
		t.Fatalf("attempt failed: %+v", res)
	}
	if w.True("session.open") {
		t.Fatal("undo effect not applied")
	}
}

func TestProviderOf(t *testing.T) {
	proc := projectorProcedure()
	if p := providerOf(proc, "vnc.running"); p != "start-vnc-server" {
		t.Fatalf("provider = %q", p)
	}
	if p := providerOf(proc, "unknown"); p != "" {
		t.Fatalf("provider of unknown = %q", p)
	}
}

func TestAttemptDeterministicPerSeed(t *testing.T) {
	proc := projectorProcedure()
	run := func() AttemptResult {
		k := sim.New(99)
		u := New(k, "d", CasualFaculties())
		u.LearnSteps(proc, "project")
		return u.Attempt(proc, NewWorld(), 10)
	}
	a, b := run(), run()
	if a.Success != b.Success || a.Failures != b.Failures || a.StepsTried != b.StepsTried {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
