package user

import (
	"fmt"
	"sort"

	"aroma/internal/sim"
)

// This file models the paper's "conceptual burden": the Smart Projector
// requires that "both clients must be started in order to project and
// control ... the VNC server must also be started on the laptop for
// projection to succeed ... when finished, the user must stop both
// clients." A Procedure encodes such an operating discipline as steps
// with preconditions and effects over a propositional world state; a
// user attempts it guided by their (possibly incomplete) mental model,
// learning from failures and accumulating frustration. Experiment C5
// Monte-Carlos this for novice vs expert users and for the original vs a
// streamlined design.

// Step is one action in an operating procedure.
type Step struct {
	Name string
	// Preconds are propositions that must equal "true" in the world
	// state before the step succeeds.
	Preconds []string
	// Effects are propositions this step sets to "true".
	Effects []string
	// Undoes are propositions this step sets to "false".
	Undoes []string
	// Difficulty in [0,1] is the step's conceptual difficulty: how hard
	// it is to perform correctly without training.
	Difficulty float64
	// Latency is the system response time the user experiences.
	Latency sim.Time
}

// Procedure is the full operating discipline for reaching a goal.
type Procedure struct {
	System string // name used for faculty training lookup
	Steps  []Step
	// GoalProp is the proposition that, once "true", means success.
	GoalProp string
}

// TotalDifficulty sums step difficulties — the design's conceptual
// burden in the paper's sense.
func (p Procedure) TotalDifficulty() float64 {
	total := 0.0
	for _, s := range p.Steps {
		total += s.Difficulty
	}
	return total
}

// World is the propositional system state a procedure manipulates.
type World struct {
	state map[string]string
}

// NewWorld creates an empty world (all propositions "false").
func NewWorld() *World { return &World{state: make(map[string]string)} }

// Set assigns a proposition.
func (w *World) Set(prop, val string) { w.state[prop] = val }

// Get returns a proposition's value ("" when unset).
func (w *World) Get(prop string) string { return w.state[prop] }

// True reports whether the proposition is "true".
func (w *World) True(prop string) bool { return w.state[prop] == "true" }

// Snapshot copies the state for mental-model consistency checks.
func (w *World) Snapshot() map[string]string {
	out := make(map[string]string, len(w.state))
	for k, v := range w.state {
		out[k] = v
	}
	return out
}

// AttemptResult reports one user's attempt at a procedure.
type AttemptResult struct {
	Success        bool
	Abandoned      bool
	StepsTried     int
	Failures       int
	Surprises      uint64
	Elapsed        sim.Time
	FrustrationEnd float64
	FailedSteps    []string
}

// Attempt has the user try to execute the procedure in the world.
//
// The user plans from their mental model: they perform the steps they
// believe are required ("plan:<step>" beliefs). An expert believes in all
// steps; a novice holds beliefs for only the obvious ones. When a step's
// precondition fails, the user is surprised (mental-model inconsistency),
// learns the missing prerequisite with probability proportional to tech
// skill, gains frustration proportional to the step's difficulty, and
// retries — until success, the retry limit, or abandonment.
//
// The knowledge probability kp for performing a step correctly is
//
//	kp = training + (1-training) * (1 - difficulty*(1-techSkill))
//
// so trained users are immune to difficulty and unskilled users suffer
// in proportion to it.
func (u *User) Attempt(proc Procedure, w *World, maxRetries int) AttemptResult {
	res := AttemptResult{}
	training := u.Faculties.TrainingFor(proc.System)
	rng := u.kernel.Rand()

	for try := 0; try <= maxRetries; try++ {
		if u.Abandoned() {
			break
		}
		// Execute the steps the user believes in, in procedure order.
		for _, step := range proc.Steps {
			if u.Abandoned() {
				break
			}
			believed, held := u.Mental.Belief("plan:" + step.Name)
			if held && believed != "true" {
				continue // user believes the step unnecessary
			}
			if !held && training < 0.5 {
				// Novice without a belief skips non-obvious steps.
				continue
			}
			res.StepsTried++
			// Performing the step takes its latency; slow responses
			// frustrate impatient users. Attempts run between simulation
			// events, so elapsed time is accounted in the result rather
			// than on the kernel clock.
			res.Elapsed += step.Latency
			u.ExperienceLatency(step.Latency, step.Name)

			// Check preconditions against the real world.
			missing := ""
			for _, pre := range step.Preconds {
				if !w.True(pre) {
					missing = pre
					break
				}
			}
			if missing != "" {
				res.Failures++
				res.FailedSteps = append(res.FailedSteps, step.Name)
				u.Mental.Observe("state:"+missing, "false")
				u.Frustrate(0.1+0.3*step.Difficulty, fmt.Sprintf("%s failed: %s not ready", step.Name, missing))
				// Learn which earlier step provides the prerequisite.
				if provider := providerOf(proc, missing); provider != "" && rng.Float64() < 0.3+0.7*u.Faculties.TechSkill {
					u.Mental.Believe("plan:"+provider, "true")
				}
				continue
			}
			// Slips: even with satisfied preconditions, a hard step can
			// be fumbled by the untrained.
			kp := training + (1-training)*(1-step.Difficulty*(1-u.Faculties.TechSkill))
			if rng.Float64() > kp {
				res.Failures++
				res.FailedSteps = append(res.FailedSteps, step.Name)
				u.Frustrate(0.05+0.2*step.Difficulty, fmt.Sprintf("%s fumbled", step.Name))
				continue
			}
			// Step succeeds: apply effects.
			for _, eff := range step.Effects {
				w.Set(eff, "true")
				u.Mental.Observe("state:"+eff, "true")
			}
			for _, un := range step.Undoes {
				w.Set(un, "false")
				u.Mental.Observe("state:"+un, "false")
			}
		}
		if w.True(proc.GoalProp) {
			res.Success = true
			break
		}
		// Goal not reached: the user notices and becomes frustrated with
		// the whole system, then retries with the improved model.
		u.Frustrate(0.08, "goal not reached after following the procedure")
	}
	res.Abandoned = u.Abandoned()
	res.Surprises = u.Mental.Surprises
	res.FrustrationEnd = u.Frustration()
	return res
}

// providerOf finds the step whose effects include the proposition.
func providerOf(proc Procedure, prop string) string {
	for _, s := range proc.Steps {
		for _, e := range s.Effects {
			if e == prop {
				return s.Name
			}
		}
	}
	return ""
}

// LearnAll gives the user a complete plan belief set for the procedure —
// the expert's mental model.
func (u *User) LearnAll(proc Procedure) {
	for _, s := range proc.Steps {
		u.Mental.Believe("plan:"+s.Name, "true")
	}
}

// LearnSteps gives the user beliefs for a subset of step names — the
// novice's partial model (e.g. "press project" but not "start the VNC
// server first").
func (u *User) LearnSteps(proc Procedure, names ...string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for _, s := range proc.Steps {
		if want[s.Name] {
			u.Mental.Believe("plan:"+s.Name, "true")
		} else {
			u.Mental.Believe("plan:"+s.Name, "false")
		}
	}
}

// PlanBeliefs lists the steps the user currently believes necessary,
// in procedure order.
func (u *User) PlanBeliefs(proc Procedure) []string {
	var out []string
	for _, s := range proc.Steps {
		if v, ok := u.Mental.Belief("plan:" + s.Name); ok && v == "true" {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
