package user

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aroma/internal/sim"
)

// Property: frustration stays in [0,1] and abandonment is absorbing,
// for any sequence of frustrate/calm/latency events.
func TestPropertyFrustrationBounded(t *testing.T) {
	type ev struct {
		Kind uint8
		Mag  uint8
		Wait uint8
	}
	f := func(events []ev) bool {
		k := sim.New(5)
		u := New(k, "p", CasualFaculties())
		abandonedOnce := false
		u.OnAbandon = func(string) {
			if abandonedOnce {
				return
			}
			abandonedOnce = true
		}
		wasAbandoned := false
		for _, e := range events {
			switch e.Kind % 3 {
			case 0:
				u.Frustrate(float64(e.Mag)/200, "x")
			case 1:
				u.ExperienceLatency(sim.Time(e.Mag)*sim.Second, "ui")
			case 2:
				if e.Mag%7 == 0 {
					u.Calm()
					wasAbandoned = false
				}
			}
			if u.Frustration() < 0 || u.Frustration() > 1 {
				return false
			}
			// Abandonment only clears via Calm.
			if wasAbandoned && !u.Abandoned() {
				return false
			}
			if u.Abandoned() {
				wasAbandoned = true
			}
			k.RunUntil(k.Now() + sim.Time(e.Wait)*sim.Second)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(111))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Attempt terminates with coherent counters for arbitrary
// (structurally valid) procedures and user skill settings.
func TestPropertyAttemptCoherent(t *testing.T) {
	f := func(nSteps, skillRaw, tolRaw uint8, seed int64) bool {
		steps := int(nSteps%6) + 1
		proc := Procedure{System: "gen"}
		for i := 0; i < steps; i++ {
			s := Step{
				Name:       string(rune('a' + i)),
				Effects:    []string{string(rune('A' + i))},
				Difficulty: float64(i%4) * 0.25,
				Latency:    sim.Second,
			}
			if i > 0 {
				s.Preconds = []string{string(rune('A' + i - 1))}
			}
			proc.Steps = append(proc.Steps, s)
		}
		proc.GoalProp = string(rune('A' + steps - 1))

		k := sim.New(seed)
		u := New(k, "g", Faculties{
			Languages:            []string{"en"},
			TechSkill:            float64(skillRaw%101) / 100,
			Training:             map[string]float64{},
			FrustrationTolerance: float64(tolRaw%90+10) / 100,
			PatienceLimit:        sim.Minute,
		})
		u.LearnAll(proc)
		res := u.Attempt(proc, NewWorld(), 8)
		if res.Success && res.Abandoned {
			return false // mutually exclusive
		}
		if res.StepsTried < 0 || res.Failures < 0 || res.Failures > res.StepsTried {
			return false
		}
		if res.FrustrationEnd < 0 || res.FrustrationEnd > 1 {
			return false
		}
		if len(res.FailedSteps) != res.Failures {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(112))}); err != nil {
		t.Fatal(err)
	}
}

// Property: an expert (full training, tolerance 1) always succeeds on a
// well-formed linear procedure.
func TestPropertyExpertAlwaysSucceeds(t *testing.T) {
	f := func(seed int64, nSteps uint8) bool {
		steps := int(nSteps%5) + 1
		proc := Procedure{System: "sys"}
		for i := 0; i < steps; i++ {
			s := Step{Name: string(rune('a' + i)), Effects: []string{string(rune('A' + i))}, Difficulty: 0.9}
			if i > 0 {
				s.Preconds = []string{string(rune('A' + i - 1))}
			}
			proc.Steps = append(proc.Steps, s)
		}
		proc.GoalProp = string(rune('A' + steps - 1))
		k := sim.New(seed)
		u := New(k, "x", Faculties{
			Languages:            []string{"en"},
			TechSkill:            1,
			Training:             map[string]float64{"sys": 1},
			FrustrationTolerance: 1,
			PatienceLimit:        sim.Hour,
		})
		u.LearnAll(proc)
		res := u.Attempt(proc, NewWorld(), 3)
		return res.Success
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(113))}); err != nil {
		t.Fatal(err)
	}
}
