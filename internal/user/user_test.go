package user

import (
	"strings"
	"testing"

	"aroma/internal/sim"
)

func TestFacultiesQueries(t *testing.T) {
	f := ResearcherFaculties()
	if !f.Speaks("en") || f.Speaks("fr") {
		t.Fatal("language check wrong")
	}
	if f.TrainingFor("smart-projector") != 0.9 || f.TrainingFor("unknown") != 0 {
		t.Fatal("training lookup wrong")
	}
	c := CasualFaculties()
	if c.TechSkill >= f.TechSkill {
		t.Fatal("casual should be less skilled than researcher")
	}
	if c.FrustrationTolerance >= f.FrustrationTolerance {
		t.Fatal("casual should tolerate less")
	}
}

func TestMentalModelBeliefs(t *testing.T) {
	m := NewMentalModel()
	if m.Len() != 0 {
		t.Fatal("fresh model not empty")
	}
	m.Believe("projector.on", "true")
	if v, ok := m.Belief("projector.on"); !ok || v != "true" {
		t.Fatal("belief not stored")
	}
	m.Forget("projector.on")
	if _, ok := m.Belief("projector.on"); ok {
		t.Fatal("forget failed")
	}
}

func TestObserveSurprise(t *testing.T) {
	m := NewMentalModel()
	m.Believe("session.free", "true")
	if s := m.Observe("session.free", "false"); !s {
		t.Fatal("contradiction not surprising")
	}
	if m.Surprises != 1 {
		t.Fatalf("surprises = %d", m.Surprises)
	}
	// Now consistent.
	if s := m.Observe("session.free", "false"); s {
		t.Fatal("consistent observation surprised")
	}
	// Observing something with no prior belief is not surprising.
	if s := m.Observe("new.prop", "true"); s {
		t.Fatal("novel observation surprised")
	}
}

func TestConsistencyScore(t *testing.T) {
	m := NewMentalModel()
	if m.ConsistencyWith(map[string]string{"x": "1"}) != 1 {
		t.Fatal("empty model should be consistent")
	}
	m.Believe("a", "1")
	m.Believe("b", "2")
	actual := map[string]string{"a": "1", "b": "wrong"}
	if got := m.ConsistencyWith(actual); got != 0.5 {
		t.Fatalf("consistency = %v", got)
	}
	inc := m.Inconsistencies(actual)
	if len(inc) != 1 || !strings.Contains(inc[0], "b") {
		t.Fatalf("inconsistencies = %v", inc)
	}
}

func TestFrustrationAccumulatesAndAbandons(t *testing.T) {
	k := sim.New(1)
	u := New(k, "carol", CasualFaculties()) // tolerance 0.4
	var cause string
	u.OnAbandon = func(c string) { cause = c }
	u.Frustrate(0.2, "slow")
	if u.Abandoned() {
		t.Fatal("abandoned too early")
	}
	u.Frustrate(0.25, "confusing dialog")
	if !u.Abandoned() {
		t.Fatal("did not abandon past tolerance")
	}
	if cause != "confusing dialog" {
		t.Fatalf("cause = %q", cause)
	}
	if u.FrustrationEvents != 2 {
		t.Fatalf("events = %d", u.FrustrationEvents)
	}
	// Frustration after abandonment is inert.
	u.Frustrate(0.5, "more")
	if u.FrustrationEvents != 2 {
		t.Fatal("frustration counted after abandonment")
	}
}

func TestFrustrationDecay(t *testing.T) {
	k := sim.New(1)
	u := New(k, "dan", ResearcherFaculties())
	u.FrustrationHalfLife = sim.Minute
	u.Frustrate(0.4, "x")
	if u.Frustration() != 0.4 {
		t.Fatalf("initial = %v", u.Frustration())
	}
	k.RunUntil(sim.Minute)
	got := u.Frustration()
	if got < 0.19 || got > 0.21 {
		t.Fatalf("after one half-life = %v, want ~0.2", got)
	}
	k.RunUntil(30 * sim.Minute)
	if u.Frustration() != 0 {
		t.Fatalf("long decay = %v, want 0", u.Frustration())
	}
}

func TestCalmResets(t *testing.T) {
	k := sim.New(1)
	u := New(k, "eve", CasualFaculties())
	u.Frustrate(0.9, "everything")
	if !u.Abandoned() {
		t.Fatal("should have abandoned")
	}
	u.Calm()
	if u.Abandoned() || u.Frustration() != 0 {
		t.Fatal("Calm did not reset")
	}
}

func TestExperienceLatency(t *testing.T) {
	k := sim.New(1)
	u := New(k, "pat", CasualFaculties()) // patience 2s
	u.ExperienceLatency(sim.Second, "ui")
	if u.Frustration() != 0 {
		t.Fatal("fast response frustrated")
	}
	u.ExperienceLatency(6*sim.Second, "ui") // 2x excess → 0.1
	if u.Frustration() <= 0 {
		t.Fatal("slow response did not frustrate")
	}
	// Extreme latency is capped.
	v := New(k, "vic", CasualFaculties())
	v.ExperienceLatency(sim.Hour, "ui")
	if v.Frustration() > 0.5 {
		t.Fatalf("latency frustration uncapped: %v", v.Frustration())
	}
}

func TestZeroOrNegativeFrustrationIgnored(t *testing.T) {
	u := New(sim.New(1), "z", CasualFaculties())
	u.Frustrate(0, "nothing")
	u.Frustrate(-1, "negative")
	if u.Frustration() != 0 || u.FrustrationEvents != 0 {
		t.Fatal("non-positive deltas should be ignored")
	}
}

func TestGoalImportance(t *testing.T) {
	u := New(sim.New(1), "g", CasualFaculties())
	u.Goals = []Goal{{Name: "present", Importance: 3}, {Name: "demo", Importance: 1}}
	if u.GoalImportanceTotal() != 4 {
		t.Fatalf("total = %v", u.GoalImportanceTotal())
	}
}

func TestUserString(t *testing.T) {
	u := New(sim.New(1), "s", CasualFaculties())
	if !strings.Contains(u.String(), "engaged") {
		t.Fatal("state missing")
	}
	u.Frustrate(0.9, "x")
	if !strings.Contains(u.String(), "abandoned") {
		t.Fatal("abandoned state missing")
	}
}

func TestDefaultPhysiologyReasonable(t *testing.T) {
	p := DefaultPhysiology()
	if p.SpeechLevelDB < 50 || p.SpeechLevelDB > 80 {
		t.Fatalf("speech level %v", p.SpeechLevelDB)
	}
	if p.SpeedMPS <= 0 || p.ReachM <= 0 || p.MinLegiblePx <= 0 {
		t.Fatal("non-positive physiology values")
	}
}
