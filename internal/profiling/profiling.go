// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the aroma command-line tools, so a whole campaign can be
// profiled end to end with the stock pprof toolchain:
//
//	aromasweep -scenario mobiledense -reps 32 -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a
// stop function that ends it and writes a heap profile (if memPath is
// non-empty). The stop function must run on the clean-exit path —
// typically via defer in main — and is safe to call when both paths are
// empty, in which case Start does nothing.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
