package netsim

import "sort"

// ReasmState is one in-progress fragment reassembly in export form.
type ReasmState struct {
	Src   Addr   `json:"src"`
	MsgID uint64 `json:"msg_id"`
	Have  int    `json:"have"`
	Total int    `json:"total"`
}

// NodeState is one node's exportable state. Pending calls are exported
// by message ID only: their completion closures live in the model, and
// their timeout timers in the kernel's pending-event export.
type NodeState struct {
	Addr         Addr         `json:"addr"`
	Name         string       `json:"name"`
	MTU          int          `json:"mtu"`
	Groups       []Group      `json:"groups,omitempty"`
	PendingCalls []uint64     `json:"pending_calls,omitempty"`
	Reassemblies []ReasmState `json:"reassemblies,omitempty"`
}

// State is the network's exportable state: the message-ID counter, the
// lifetime stats, and every node in ascending address order.
type State struct {
	MsgSeq         uint64      `json:"msg_seq"`
	DatagramsSent  uint64      `json:"datagrams_sent"`
	CallsStarted   uint64      `json:"calls_started"`
	CallsCompleted uint64      `json:"calls_completed"`
	CallsTimedOut  uint64      `json:"calls_timed_out"`
	Nodes          []NodeState `json:"nodes,omitempty"`
}

// ExportState captures the network's current state in canonical form.
func (n *Network) ExportState() State {
	st := State{
		MsgSeq:         n.msgSeq,
		DatagramsSent:  n.DatagramsSent,
		CallsStarted:   n.CallsStarted,
		CallsCompleted: n.CallsCompleted,
		CallsTimedOut:  n.CallsTimedOut,
	}
	//aroma:ordered export rows are sorted by Addr immediately after the loop
	for _, nd := range n.nodes {
		ns := NodeState{Addr: nd.Addr(), Name: nd.name, MTU: nd.MTU}
		//aroma:ordered export rows are sorted by group immediately after the loop
		for g := range nd.groups {
			ns.Groups = append(ns.Groups, g)
		}
		sort.Slice(ns.Groups, func(i, j int) bool { return ns.Groups[i] < ns.Groups[j] })
		//aroma:ordered export rows are sorted by call ID immediately after the loop
		for id := range nd.pending {
			ns.PendingCalls = append(ns.PendingCalls, id)
		}
		sort.Slice(ns.PendingCalls, func(i, j int) bool { return ns.PendingCalls[i] < ns.PendingCalls[j] })
		//aroma:ordered export rows are sorted by (Src, MsgID) immediately after the loop
		for key, rs := range nd.reassembly {
			ns.Reassemblies = append(ns.Reassemblies, ReasmState{
				Src: key.src, MsgID: key.msgID, Have: rs.have, Total: len(rs.frags),
			})
		}
		sort.Slice(ns.Reassemblies, func(i, j int) bool {
			a, b := &ns.Reassemblies[i], &ns.Reassemblies[j]
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.MsgID < b.MsgID
		})
		st.Nodes = append(st.Nodes, ns)
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Addr < st.Nodes[j].Addr })
	return st
}
