package netsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/radio"
	"aroma/internal/sim"
)

// Property: datagrams of any size round-trip intact through
// fragmentation and reassembly for any MTU.
func TestPropertyFragmentationRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, mtuRaw uint8) bool {
		size := int(sizeRaw % 8000)
		mtu := int(mtuRaw%200) + 8
		k := sim.New(seed)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 100, 100)))
		med := radio.NewMedium(k, e)
		m := mac.New(med, mac.Config{})
		nw := New(m)
		a := nw.NewNode("a", m.AddStation(med.NewRadio("a", geo.Pt(0, 0), 6, 15)))
		b := nw.NewNode("b", m.AddStation(med.NewRadio("b", geo.Pt(5, 0), 6, 15)))
		a.MTU = mtu
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i*31 + int(seed))
		}
		var got []byte
		received := false
		b.Handle(PortDynamic, func(src Addr, data []byte) {
			got = data
			received = true
		})
		a.SendDatagram(b.Addr(), PortDynamic, payload)
		k.Run()
		if size == 0 {
			return received // empty datagram still arrives
		}
		return received && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(81))}); err != nil {
		t.Fatal(err)
	}
}

// Property: calls always resolve — with a response, a timeout, or a
// link failure — and the pending-call table drains.
func TestPropertyCallsAlwaysResolve(t *testing.T) {
	f := func(seed int64, nCalls uint8, serve bool) bool {
		calls := int(nCalls%10) + 1
		k := sim.New(seed)
		e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 100, 100)))
		med := radio.NewMedium(k, e)
		m := mac.New(med, mac.Config{})
		nw := New(m)
		a := nw.NewNode("a", m.AddStation(med.NewRadio("a", geo.Pt(0, 0), 6, 15)))
		b := nw.NewNode("b", m.AddStation(med.NewRadio("b", geo.Pt(5, 0), 6, 15)))
		if serve {
			b.HandleRequest(PortControl, func(src Addr, data []byte) []byte { return data })
		}
		resolved := 0
		for i := 0; i < calls; i++ {
			a.Call(b.Addr(), PortControl, []byte{byte(i)}, sim.Second, func([]byte, error) {
				resolved++
			})
		}
		k.Run()
		return resolved == calls && a.PendingCalls() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(82))}); err != nil {
		t.Fatal(err)
	}
}
