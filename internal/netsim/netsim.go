// Package netsim provides the packet networking substrate that the Aroma
// services run over: node addressing on top of the MAC layer, port-based
// demultiplexing, datagram fragmentation and reassembly, multicast groups
// (the transport for Jini-style discovery announcements), and a
// request/response transport with timeouts.
//
// The paper's resource layer requires that "networking features should be
// automatically available [and] self-configuring"; netsim keeps zero
// manual configuration: nodes get addresses when created and multicast
// membership is a single Join call.
//
// Scenario code normally reaches this package through the pkg/aroma
// facade, which wires radios, MAC stations, and nodes in one AddDevice
// call.
package netsim

import (
	"errors"
	"fmt"

	"aroma/internal/mac"
	"aroma/internal/sim"
)

// Addr identifies a node; it is the node's MAC station address.
type Addr = mac.Addr

// Port demultiplexes services within a node.
type Port uint16

// Group identifies a multicast group.
type Group uint16

// Well-known ports used by the Aroma stack; applications should use ports
// above PortDynamic.
const (
	PortDiscovery Port = 1
	PortRFB       Port = 2
	PortControl   Port = 3
	PortEvents    Port = 4
	PortDynamic   Port = 1024
)

// DefaultMTU is the maximum payload bytes carried in one link frame.
const DefaultMTU = 1500

// DefaultCallTimeout bounds a Call waiting for its response.
const DefaultCallTimeout = 2 * sim.Second

// kind tags packets on the wire.
type kind uint8

const (
	kindDatagram kind = iota
	kindRequest
	kindResponse
	kindMulticast
)

// packet is the wire unit carried as the MAC frame payload.
type packet struct {
	Kind    kind
	Src     Addr
	Dst     Addr
	Group   Group
	Port    Port
	MsgID   uint64
	FragIdx int
	FragCnt int
	Data    []byte
}

// headerBytes approximates the packet header size on the wire.
const headerBytes = 20

// Handler consumes a datagram or multicast delivery.
type Handler func(src Addr, data []byte)

// RequestHandler serves a Call; its return value is sent back to the
// caller. Returning nil sends an empty (but successful) response.
type RequestHandler func(src Addr, data []byte) []byte

// Network owns the nodes built over one MAC.
type Network struct {
	kernel      *sim.Kernel
	mac         *mac.MAC
	nodes       map[Addr]*Node
	msgSeq      uint64
	defaultMTU  int
	callTimeout sim.Time

	// Stats
	DatagramsSent  uint64
	CallsStarted   uint64
	CallsCompleted uint64
	CallsTimedOut  uint64
}

// Option configures a Network at construction time.
type Option func(*Network)

// WithMTU sets the fragmentation threshold new nodes start with
// (individual nodes may still override their MTU field).
func WithMTU(bytes int) Option {
	return func(n *Network) {
		if bytes > 0 {
			n.defaultMTU = bytes
		}
	}
}

// WithCallTimeout sets the default deadline for Call when the caller
// passes a non-positive timeout.
func WithCallTimeout(t sim.Time) Option {
	return func(n *Network) {
		if t > 0 {
			n.callTimeout = t
		}
	}
}

// New creates a network over the given MAC layer.
func New(m *mac.MAC, opts ...Option) *Network {
	n := &Network{
		kernel:      m.Medium().Kernel(),
		mac:         m,
		nodes:       make(map[Addr]*Node),
		defaultMTU:  DefaultMTU,
		callTimeout: DefaultCallTimeout,
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Kernel returns the owning simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// MAC returns the underlying MAC layer.
func (n *Network) MAC() *mac.MAC { return n.mac }

// Node is one network endpoint.
type Node struct {
	net     *Network
	station *mac.Station
	name    string

	handlers    map[Port]Handler
	reqHandlers map[Port]RequestHandler
	groups      map[Group]bool

	reassembly map[reasmKey]*reasmState
	pending    map[uint64]*pendingCall

	// MTU is the fragmentation threshold in payload bytes.
	MTU int
}

type reasmKey struct {
	src   Addr
	msgID uint64
}

type reasmState struct {
	frags [][]byte
	have  int
}

type pendingCall struct {
	done    func([]byte, error)
	timeout sim.Event
}

// NewNode creates a node bound to the given MAC station.
func (n *Network) NewNode(name string, st *mac.Station) *Node {
	node := &Node{
		net:         n,
		station:     st,
		name:        name,
		handlers:    make(map[Port]Handler),
		reqHandlers: make(map[Port]RequestHandler),
		groups:      make(map[Group]bool),
		reassembly:  make(map[reasmKey]*reasmState),
		pending:     make(map[uint64]*pendingCall),
		MTU:         n.defaultMTU,
	}
	n.nodes[st.Addr()] = node
	st.OnReceive = node.onFrame
	return node
}

// Addr returns the node's address.
func (nd *Node) Addr() Addr { return nd.station.Addr() }

// Network returns the network the node belongs to.
func (nd *Node) Network() *Network { return nd.net }

// Kernel returns the simulation kernel the node runs on.
func (nd *Node) Kernel() *sim.Kernel { return nd.net.kernel }

// Name returns the node's human-readable name.
func (nd *Node) Name() string { return nd.name }

// Station returns the underlying MAC station.
func (nd *Node) Station() *mac.Station { return nd.station }

// Handle registers a datagram/multicast handler for a port, replacing any
// previous handler.
func (nd *Node) Handle(p Port, h Handler) { nd.handlers[p] = h }

// HandleRequest registers a request handler for a port.
func (nd *Node) HandleRequest(p Port, h RequestHandler) { nd.reqHandlers[p] = h }

// Join adds the node to a multicast group.
func (nd *Node) Join(g Group) { nd.groups[g] = true }

// Leave removes the node from a multicast group.
func (nd *Node) Leave(g Group) { delete(nd.groups, g) }

// Member reports whether the node belongs to group g.
func (nd *Node) Member(g Group) bool { return nd.groups[g] }

// ErrTimeout is reported when a Call's response does not arrive in time.
var ErrTimeout = errors.New("netsim: call timed out")

// ErrLinkFailed is reported when the link layer gives up on a fragment.
var ErrLinkFailed = errors.New("netsim: link-layer send failed")

// SendDatagram sends an unreliable datagram (fragmenting if needed).
func (nd *Node) SendDatagram(dst Addr, port Port, data []byte) {
	nd.net.DatagramsSent++
	nd.net.msgSeq++
	nd.sendFragmented(packet{
		Kind: kindDatagram, Src: nd.Addr(), Dst: dst, Port: port,
		MsgID: nd.net.msgSeq, Data: data,
	}, nil)
}

// SendMulticast broadcasts data to every member of group g.
func (nd *Node) SendMulticast(g Group, port Port, data []byte) {
	nd.net.DatagramsSent++
	nd.net.msgSeq++
	nd.sendFragmented(packet{
		Kind: kindMulticast, Src: nd.Addr(), Dst: mac.Broadcast, Group: g, Port: port,
		MsgID: nd.net.msgSeq, Data: data,
	}, nil)
}

// Call sends a request to dst:port and invokes done with the response or
// an error. A non-positive timeout uses the network's configured default
// (DefaultCallTimeout unless overridden with WithCallTimeout).
func (nd *Node) Call(dst Addr, port Port, req []byte, timeout sim.Time, done func(resp []byte, err error)) {
	if timeout <= 0 {
		timeout = nd.net.callTimeout
	}
	nd.net.CallsStarted++
	nd.net.msgSeq++
	id := nd.net.msgSeq
	pc := &pendingCall{done: done}
	pc.timeout = nd.net.kernel.Schedule(timeout, "net.callTimeout", func() {
		delete(nd.pending, id)
		nd.net.CallsTimedOut++
		if done != nil {
			done(nil, ErrTimeout)
		}
	})
	nd.pending[id] = pc
	nd.sendFragmented(packet{
		Kind: kindRequest, Src: nd.Addr(), Dst: dst, Port: port,
		MsgID: id, Data: req,
	}, func(err error) {
		// Link-layer failure: fail the call early.
		if pcLive, ok := nd.pending[id]; ok && err != nil {
			delete(nd.pending, id)
			nd.net.kernel.Cancel(pcLive.timeout)
			nd.net.CallsTimedOut++
			if done != nil {
				done(nil, fmt.Errorf("%w: %v", ErrLinkFailed, err))
			}
		}
	})
}

// sendFragmented splits a packet into MTU-sized fragments and queues them
// on the MAC. onLinkResult, if non-nil, receives the first link error (or
// nil after the last fragment succeeds).
func (nd *Node) sendFragmented(p packet, onLinkResult func(error)) {
	mtu := nd.MTU
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	data := p.Data
	cnt := (len(data) + mtu - 1) / mtu
	if cnt == 0 {
		cnt = 1
	}
	reported := false
	remaining := cnt
	for i := 0; i < cnt; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(data) {
			hi = len(data)
		}
		frag := p
		frag.FragIdx = i
		frag.FragCnt = cnt
		frag.Data = data[lo:hi]
		bits := (len(frag.Data) + headerBytes) * 8
		err := nd.station.Send(p.Dst, bits, frag, func(res mac.SendResult) {
			remaining--
			if onLinkResult == nil || reported {
				return
			}
			if res.Err != nil {
				reported = true
				onLinkResult(res.Err)
			} else if remaining == 0 {
				reported = true
				onLinkResult(nil)
			}
		})
		if err != nil && onLinkResult != nil && !reported {
			reported = true
			onLinkResult(err)
		}
	}
}

// onFrame handles a delivered MAC frame.
func (nd *Node) onFrame(f mac.Frame) {
	p, ok := f.Payload.(packet)
	if !ok {
		return
	}
	if p.Kind == kindMulticast && !nd.groups[p.Group] {
		return
	}
	data, complete := nd.reassemble(p)
	if !complete {
		return
	}
	switch p.Kind {
	case kindDatagram, kindMulticast:
		if h := nd.handlers[p.Port]; h != nil {
			h(p.Src, data)
		}
	case kindRequest:
		h := nd.reqHandlers[p.Port]
		if h == nil {
			return // no service on that port: caller times out
		}
		resp := h(p.Src, data)
		nd.sendFragmented(packet{
			Kind: kindResponse, Src: nd.Addr(), Dst: p.Src, Port: p.Port,
			MsgID: p.MsgID, Data: resp,
		}, nil)
	case kindResponse:
		pc, ok := nd.pending[p.MsgID]
		if !ok {
			return // late response after timeout
		}
		delete(nd.pending, p.MsgID)
		nd.net.kernel.Cancel(pc.timeout)
		nd.net.CallsCompleted++
		if pc.done != nil {
			pc.done(data, nil)
		}
	}
}

// reassemble accumulates fragments; it returns the full payload and true
// once every fragment of the message has arrived.
func (nd *Node) reassemble(p packet) ([]byte, bool) {
	if p.FragCnt <= 1 {
		return p.Data, true
	}
	key := reasmKey{src: p.Src, msgID: p.MsgID}
	st := nd.reassembly[key]
	if st == nil {
		st = &reasmState{frags: make([][]byte, p.FragCnt)}
		nd.reassembly[key] = st
	}
	if p.FragIdx >= 0 && p.FragIdx < len(st.frags) && st.frags[p.FragIdx] == nil {
		st.frags[p.FragIdx] = p.Data
		st.have++
	}
	if st.have < len(st.frags) {
		return nil, false
	}
	delete(nd.reassembly, key)
	var full []byte
	for _, f := range st.frags {
		full = append(full, f...)
	}
	return full, true
}

// PendingCalls returns the number of calls awaiting responses.
func (nd *Node) PendingCalls() int { return len(nd.pending) }
