package netsim

import (
	"bytes"
	"errors"
	"testing"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/radio"
	"aroma/internal/sim"
)

// testNet builds n nodes in a row 4 m apart on channel 6.
func testNet(seed int64, n int) (*sim.Kernel, *Network, []*Node) {
	k := sim.New(seed)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 500, 100)))
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := New(m)
	nodes := make([]*Node, n)
	for i := range nodes {
		st := m.AddStation(med.NewRadio("r", geo.Pt(float64(4*i), 0), 6, 15))
		nodes[i] = nw.NewNode("node", st)
	}
	return k, nw, nodes
}

func TestDatagramDelivery(t *testing.T) {
	k, _, nodes := testNet(1, 2)
	var got []byte
	var from Addr
	nodes[1].Handle(PortDynamic, func(src Addr, data []byte) { got = data; from = src })
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic, []byte("ping"))
	k.Run()
	if string(got) != "ping" || from != nodes[0].Addr() {
		t.Fatalf("got %q from %d", got, from)
	}
}

func TestPortDemux(t *testing.T) {
	k, _, nodes := testNet(1, 2)
	a, b := 0, 0
	nodes[1].Handle(PortDynamic, func(Addr, []byte) { a++ })
	nodes[1].Handle(PortDynamic+1, func(Addr, []byte) { b++ })
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic, nil)
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic+1, nil)
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic+1, nil)
	k.Run()
	if a != 1 || b != 2 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestUnhandledPortDropped(t *testing.T) {
	k, _, nodes := testNet(1, 2)
	nodes[0].SendDatagram(nodes[1].Addr(), 999, []byte("x"))
	k.Run() // must not panic
}

func TestFragmentationRoundTrip(t *testing.T) {
	k, _, nodes := testNet(2, 2)
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	var got []byte
	nodes[1].Handle(PortDynamic, func(_ Addr, data []byte) { got = data })
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic, big)
	k.Run()
	if !bytes.Equal(got, big) {
		t.Fatalf("fragmented payload corrupted: len=%d want %d", len(got), len(big))
	}
}

func TestSmallMTUFragmentation(t *testing.T) {
	k, _, nodes := testNet(3, 2)
	nodes[0].MTU = 10
	payload := []byte("the quick brown fox jumps over the lazy dog")
	var got []byte
	nodes[1].Handle(PortDynamic, func(_ Addr, data []byte) { got = data })
	nodes[0].SendDatagram(nodes[1].Addr(), PortDynamic, payload)
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestMulticastMembership(t *testing.T) {
	k, _, nodes := testNet(4, 4)
	const g Group = 7
	counts := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		nodes[i].Handle(PortDiscovery, func(Addr, []byte) { counts[i]++ })
	}
	nodes[1].Join(g)
	nodes[2].Join(g)
	// node 3 does not join.
	nodes[0].SendMulticast(g, PortDiscovery, []byte("announce"))
	k.Run()
	if counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("members missed multicast: %v", counts)
	}
	if counts[3] != 0 {
		t.Fatalf("non-member received multicast: %v", counts)
	}
	if !nodes[1].Member(g) || nodes[3].Member(g) {
		t.Fatal("membership predicates wrong")
	}
	nodes[1].Leave(g)
	if nodes[1].Member(g) {
		t.Fatal("Leave did not take")
	}
}

func TestCallResponse(t *testing.T) {
	k, nw, nodes := testNet(5, 2)
	nodes[1].HandleRequest(PortControl, func(src Addr, data []byte) []byte {
		return append([]byte("echo:"), data...)
	})
	var resp []byte
	var callErr error
	nodes[0].Call(nodes[1].Addr(), PortControl, []byte("hi"), 0, func(r []byte, err error) {
		resp, callErr = r, err
	})
	k.Run()
	if callErr != nil {
		t.Fatal(callErr)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if nw.CallsCompleted != 1 || nw.CallsTimedOut != 0 {
		t.Fatalf("stats: completed=%d timedout=%d", nw.CallsCompleted, nw.CallsTimedOut)
	}
	if nodes[0].PendingCalls() != 0 {
		t.Fatal("pending call leaked")
	}
}

func TestCallTimeoutOnUnservedPort(t *testing.T) {
	k, nw, nodes := testNet(6, 2)
	var callErr error
	nodes[0].Call(nodes[1].Addr(), PortControl, []byte("hi"), sim.Second, func(r []byte, err error) {
		callErr = err
	})
	k.Run()
	if !errors.Is(callErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", callErr)
	}
	if nw.CallsTimedOut != 1 {
		t.Fatalf("timeouts = %d", nw.CallsTimedOut)
	}
}

func TestCallFailsFastOnDeadLink(t *testing.T) {
	// Peer is far out of radio range: the MAC gives up and the call
	// should fail with a link error well before the (long) timeout.
	k := sim.New(7)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 10000, 100)))
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := New(m)
	a := nw.NewNode("a", m.AddStation(med.NewRadio("a", geo.Pt(0, 0), 6, 15)))
	b := nw.NewNode("b", m.AddStation(med.NewRadio("b", geo.Pt(9000, 0), 6, 15)))
	var callErr error
	failedAt := sim.Time(0)
	a.Call(b.Addr(), PortControl, []byte("hi"), sim.Hour, func(r []byte, err error) {
		callErr = err
		failedAt = k.Now()
	})
	k.Run()
	if !errors.Is(callErr, ErrLinkFailed) {
		t.Fatalf("err = %v, want link failure", callErr)
	}
	if failedAt >= sim.Hour {
		t.Fatalf("fail-fast took %v", failedAt)
	}
	if nw.CallsTimedOut != 1 {
		t.Fatalf("timeouts = %d", nw.CallsTimedOut)
	}
}

func TestConcurrentCallsKeptSeparate(t *testing.T) {
	k, _, nodes := testNet(8, 3)
	nodes[2].HandleRequest(PortControl, func(src Addr, data []byte) []byte {
		return append([]byte{data[0]}, 'R')
	})
	got := map[byte]string{}
	for i, n := range []*Node{nodes[0], nodes[1]} {
		tag := byte('A' + i)
		n.Call(nodes[2].Addr(), PortControl, []byte{tag}, 0, func(r []byte, err error) {
			if err == nil {
				got[tag] = string(r)
			}
		})
	}
	k.Run()
	if got['A'] != "AR" || got['B'] != "BR" {
		t.Fatalf("responses mismatched: %v", got)
	}
}

func TestNilResponseOK(t *testing.T) {
	k, _, nodes := testNet(9, 2)
	nodes[1].HandleRequest(PortControl, func(Addr, []byte) []byte { return nil })
	responded := false
	var gotErr error
	nodes[0].Call(nodes[1].Addr(), PortControl, []byte("x"), 0, func(r []byte, err error) {
		responded = true
		gotErr = err
	})
	k.Run()
	if !responded || gotErr != nil {
		t.Fatalf("responded=%v err=%v", responded, gotErr)
	}
}

func TestNodeAccessors(t *testing.T) {
	_, nw, nodes := testNet(10, 1)
	if nodes[0].Name() != "node" || nodes[0].Station() == nil {
		t.Fatal("accessors wrong")
	}
	if nw.Kernel() == nil || nw.MAC() == nil {
		t.Fatal("network accessors wrong")
	}
}
