// Quickstart: model a pervasive computing system in the LPC framework
// and analyze it, in under a hundred lines.
//
// The system is the paper's motivating kind of appliance — a smart
// kettle with a cloud-of-2000-era twist: a small display, English-only
// firmware, and a research-grade setup procedure. Two users look at it:
// the engineer who built it and the houseguest who just wants tea.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"aroma/internal/core"
	"aroma/internal/device"
	"aroma/internal/geo"
	"aroma/internal/sim"
	"aroma/internal/user"
)

func main() {
	k := sim.New(1)

	// 1. Describe the device column: resources (Figure 3's Mem Sto Exe
	//    UI Net), application state, and design purpose.
	kettle := &core.DeviceEntity{
		Name: "smart-kettle",
		Pos:  geo.Pt(2, 2),
		Spec: device.Spec{
			Name: "smart-kettle", MemBytes: 1 << 20, StoBytes: 1 << 20,
			ExeMIPS: 8, Exec: device.SingleThreaded, AllowAbort: false,
			UI: device.UISpec{
				DisplayW: 96, DisplayH: 32,
				InputMethods: []string{"buttons"},
				Languages:    []string{"en"},
				BaseLatency:  300 * sim.Millisecond,
			},
		},
		AppState: map[string]string{"boiling": "false", "schedule.set": "true"},
		Purpose: core.DesignPurpose{
			Description:  "demonstrate schedulable boiling for the lab",
			Capabilities: map[string]float64{"boil-water": 0.9, "schedule": 0.8, "walk-up-use": 0.3},
			AssumedSkill: 0.8,
		},
	}

	// 2. Describe the user column: faculties, beliefs, goals.
	guest := user.New(k, "houseguest", user.CasualFaculties())
	guest.Pos = geo.Pt(2, 3)
	guest.Goals = []user.Goal{
		{Name: "cup of tea, now", Needs: []string{"boil-water", "walk-up-use"}, Importance: 1},
	}
	// The guest assumes the kettle is idle; the host left a schedule on.
	guest.Mental.Believe("schedule.set", "false")

	engineer := user.New(k, "engineer", user.ResearcherFaculties())
	engineer.Pos = geo.Pt(2, 3)
	engineer.Goals = []user.Goal{
		{Name: "verify the scheduler", Needs: []string{"schedule"}, Importance: 1},
	}
	engineer.Mental.Believe("schedule.set", "true")

	// 3. Assemble the system and analyze.
	sys := &core.System{Name: "smart-kettle"}
	sys.AddDevice(kettle)
	sys.AddUser(&core.UserEntity{U: guest, Operates: []string{"smart-kettle"}})
	sys.AddUser(&core.UserEntity{U: engineer, Operates: []string{"smart-kettle"}})

	report := core.Analyze(sys, core.DefaultConfig())
	fmt.Println(core.RenderFigure1())
	fmt.Println(report.Render())

	// 4. The same analysis without the user column — the OSI-style view
	//    the paper argues is blind to what actually dooms appliances.
	ablated := core.Analyze(sys, core.Config{UserColumn: false})
	fmt.Printf("Without the user column the analyzer sees %d findings instead of %d;\n",
		len(ablated.Findings), len(report.Findings))
	fmt.Printf("every violation it misses involves the human: %d vs %d.\n",
		len(ablated.Violations()), len(report.Violations()))
}
