// Quickstart: model a pervasive computing system in the LPC framework
// and analyze it — the paper's smart-kettle appliance seen by the
// engineer who built it and the houseguest who just wants tea.
//
// The scenario itself lives in pkg/aroma/scenarios (a dozen declarative
// lines against the pkg/aroma facade); this binary just runs it from the
// registry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // register the stock scenarios
)

func main() {
	if _, err := scenario.Run("quickstart", scenario.Config{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
