// Walkabout: the mobility story — a presenter starts a projection and
// then wanders the building with the laptop. Rate adaptation fights the
// growing distance, frames thin out, and at the range edge the stream
// dies and the forgotten session is reclaimed for the next user. Nothing
// failed; the environment changed — which is the paper's definition of
// what makes computing "pervasive" hard.
//
//	go run ./examples/walkabout
package main

import (
	"fmt"

	"aroma/internal/discovery"
	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/mobility"
	"aroma/internal/netsim"
	"aroma/internal/projector"
	"aroma/internal/radio"
	"aroma/internal/rfb"
	"aroma/internal/sim"
	"aroma/internal/trace"
)

func main() {
	k := sim.New(11)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 400, 60)))
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := netsim.New(m)
	log := trace.NewForKernel(k)

	lkNode := nw.NewNode("lookup", m.AddStation(med.NewRadio("lookup", geo.Pt(25, 30), 6, 15)))
	discovery.NewLookup(lkNode).Start()

	projNode := nw.NewNode("projector", m.AddStation(med.NewRadio("projector", geo.Pt(30, 30), 6, 15)))
	cfg := projector.DefaultConfig()
	cfg.IdleLimit = 45 * sim.Second
	proj := projector.New(projNode, discovery.NewAgent(projNode), log, cfg)

	laptopRadio := med.NewRadio("alice", geo.Pt(20, 30), 6, 15)
	aliceNode := nw.NewNode("alice", m.AddStation(laptopRadio))
	alice := projector.NewPresenter("alice", aliceNode, discovery.NewAgent(aliceNode))

	k.RunUntil(sim.Second)
	proj.Register(nil)
	k.RunUntil(3 * sim.Second)
	must(alice.StartVNC(640, 480, rfb.EncRLE))
	alice.Discover(func(err error) { must(err) })
	k.RunUntil(4 * sim.Second)
	alice.GrabProjection(func(err error) { must(err) })
	k.RunUntil(5 * sim.Second)

	anim, err := rfb.NewAnimator(alice.VNC.Framebuffer(), 0.05)
	must(err)
	anim.Textured = true
	k.Ticker(100*sim.Millisecond, "anim", anim.Step)

	// The walkabout: down the corridor, around the far wing, and out.
	walk := mobility.Patrol([]geo.Point{
		geo.Pt(20, 30), geo.Pt(150, 30), geo.Pt(330, 30), geo.Pt(330, 10),
	}, 3.0)
	walk.Waypoints = walk.Waypoints[:len(walk.Waypoints)-1] // don't come back
	mobility.Start(k, walk, 500*sim.Millisecond, func(p geo.Point) { laptopRadio.Pos = p })

	fmt.Println("time     distance  SNR(dB)  rate(Mb/s)  frames-in-window  session")
	prev := uint64(0)
	for w := 0; w < 16; w++ {
		k.RunUntil(k.Now() + 15*sim.Second)
		dist := laptopRadio.Pos.Dist(projNode.Station().Radio().Pos)
		snr := med.SNRAtDBm(laptopRadio, projNode.Station().Radio())
		rate := 0.0
		if snr >= radio.Rates[0].MinSINRdB {
			rate = radio.PickRate(snr).Mbps
		}
		holder := proj.Projection.Owner()
		if holder == "" {
			holder = "(free)"
		}
		fmt.Printf("%-8s %7.0fm  %6.1f  %9.1f  %17d  %s\n",
			k.Now(), dist, snr, rate, proj.FramesShown-prev, holder)
		prev = proj.FramesShown
		if !proj.Projection.Held() && w > 4 {
			break
		}
	}
	fmt.Printf("\nprojector showed %d frames total; session end events in trace: %d\n",
		proj.FramesShown, len(log.BySeverity(trace.Issue)))
	fmt.Println("no component failed — the environment reclaimed the system's semantics")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
