// Walkabout: the mobility story — a presenter starts a projection and
// wanders the building with the laptop until the stream dies at the
// range edge and the forgotten session is reclaimed. Nothing failed; the
// environment changed.
//
// The scenario body lives in pkg/aroma/scenarios; this binary runs it
// from the registry.
//
//	go run ./examples/walkabout
package main

import (
	"fmt"
	"os"

	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // register the stock scenarios
)

func main() {
	if _, err := scenario.Run("walkabout", scenario.Config{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
