// Noisyoffice: the paper's environment-layer user scenario — voice
// control that works in a quiet office becomes unusable as background
// conversation builds, and the frustrated user eventually gives up.
//
// "Background noise, that is currently acceptable, may become
// objectionable if voice recognition is used in a pervasive computing
// system."
//
//	go run ./examples/noisyoffice
package main

import (
	"fmt"

	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/sim"
	"aroma/internal/user"
)

func main() {
	k := sim.New(3)
	plan := geo.NewFloorPlan(geo.RectAt(0, 0, 12, 8))
	// Cubicle partitions: thin, acoustically leaky.
	plan.AddWall(geo.Seg(geo.Pt(4, 0), geo.Pt(4, 5)), 3, 6)
	plan.AddWall(geo.Seg(geo.Pt(8, 0), geo.Pt(8, 5)), 3, 6)
	e := env.New(k, plan)

	// Dana's cubicle has a voice-controlled appliance half a metre away.
	fac := user.CasualFaculties()
	fac.FrustrationTolerance = 0.75 // dana really wants this to work
	dana := user.New(k, "dana", fac)
	dana.FrustrationHalfLife = 2 * sim.Hour // a bad morning lingers
	dana.Pos = geo.Pt(2, 2)
	mic := geo.Pt(2.5, 2)
	dana.OnAbandon = func(cause string) {
		fmt.Printf("[%8s] dana gives up on voice control: %s\n", k.Now(), cause)
	}

	fmt.Println("hour-by-hour office day; dana issues 10 voice commands per hour")
	rng := k.Rand()
	conversations := []*env.NoiseSource{}
	for hour := 8; hour <= 16; hour++ {
		// The office fills up until lunch, empties after 15:00.
		switch {
		case hour <= 11:
			// Each arriving conversation is a bit closer to dana's desk.
			c := e.AddNoiseSource(fmt.Sprintf("chat-%d", hour),
				geo.Pt(9-float64(len(conversations)), 4), 62)
			conversations = append(conversations, c)
		case hour >= 15 && len(conversations) > 0:
			e.RemoveNoiseSource(conversations[len(conversations)-1])
			conversations = conversations[:len(conversations)-1]
		}
		snr := e.SpeechSNRDB(dana.Pos, mic, dana.Physiology.SpeechLevelDB)
		p := env.RecognitionSuccessProbability(snr)
		ok, fail := 0, 0
		for i := 0; i < 10 && !dana.Abandoned(); i++ {
			if rng.Float64() < p {
				ok++
			} else {
				fail++
				// A misrecognized command is a small frustration; having
				// to repeat yourself in front of colleagues is worse.
				dana.Frustrate(0.05, fmt.Sprintf("misrecognized command at %02d:00", hour))
			}
		}
		fmt.Printf("  %02d:00  conversations=%d  SNR=%5.1f dB  p=%.2f  ok=%2d fail=%2d  frustration=%.2f\n",
			hour, len(conversations), snr, p, ok, fail, dana.Frustration())
		k.RunUntil(k.Now() + sim.Hour)
		if dana.Abandoned() {
			break
		}
	}

	if !dana.Abandoned() {
		fmt.Println("dana made it through the day — a quieter office (or a better mic) would too")
	}
	fmt.Println("\nand the social inverse: even with perfect recognition, dana talking to a")
	fmt.Println("machine all day raises the ambient level for everyone else's cubicle:")
	coworker := geo.Pt(5, 2) // the other side of the partition
	before := e.AmbientNoiseDB(coworker)
	e.AddNoiseSource("dana-voice-commands", dana.Pos, dana.Physiology.SpeechLevelDB)
	after := e.AmbientNoiseDB(coworker)
	fmt.Printf("coworker's noise floor: %.1f dB -> %.1f dB once dana starts dictating\n", before, after)
}
