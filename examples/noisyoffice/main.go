// Noisyoffice: the paper's environment-layer user scenario — voice
// control that works in a quiet office becomes unusable as background
// conversation builds, and the frustrated user eventually gives up.
//
// The scenario body lives in pkg/aroma/scenarios; this binary runs it
// from the registry.
//
//	go run ./examples/noisyoffice
package main

import (
	"fmt"
	"os"

	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // register the stock scenarios
)

func main() {
	if _, err := scenario.Run("noisyoffice", scenario.Config{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
