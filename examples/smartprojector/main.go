// Smartprojector: the paper's challenge application end-to-end on live
// substrates — lookup service, lease-backed registration, discovery,
// session grab, VNC-style streaming, a hijack attempt, and mobile-proxy
// command validation.
//
//	go run ./examples/smartprojector
package main

import (
	"fmt"

	"aroma/internal/discovery"
	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/netsim"
	"aroma/internal/projector"
	"aroma/internal/radio"
	"aroma/internal/rfb"
	"aroma/internal/sim"
	"aroma/internal/trace"
)

func main() {
	k := sim.New(42)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 30, 20)))
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := netsim.New(m)
	log := trace.NewForKernel(k)

	// Conference-room infrastructure.
	lookupNode := nw.NewNode("lookup", m.AddStation(med.NewRadio("lookup", geo.Pt(15, 18), 6, 15)))
	discovery.NewLookup(lookupNode).Start()

	projNode := nw.NewNode("projector", m.AddStation(med.NewRadio("projector", geo.Pt(25, 10), 6, 15)))
	proj := projector.New(projNode, discovery.NewAgent(projNode), log, projector.DefaultConfig())

	// The presenter and a would-be hijacker.
	aliceNode := nw.NewNode("alice", m.AddStation(med.NewRadio("alice", geo.Pt(5, 10), 6, 15)))
	alice := projector.NewPresenter("alice", aliceNode, discovery.NewAgent(aliceNode))
	bobNode := nw.NewNode("bob", m.AddStation(med.NewRadio("bob", geo.Pt(8, 6), 6, 15)))
	bob := projector.NewPresenter("bob", bobNode, discovery.NewAgent(bobNode))

	k.RunUntil(sim.Second) // discovery announcements propagate
	proj.Register(func(err error) { must(err) })
	k.RunUntil(2 * sim.Second)

	// Alice follows the paper's operating discipline: VNC server first,
	// then both clients.
	must(alice.StartVNC(1024, 768, rfb.EncRLE))
	alice.Discover(func(err error) { must(err) })
	k.RunUntil(3 * sim.Second)
	alice.GrabProjection(func(err error) { must(err) })
	alice.GrabControl(func(err error) { must(err) })
	k.RunUntil(4 * sim.Second)

	// She presents: her screen animates, frames flow to the projector.
	anim, err := rfb.NewAnimator(alice.VNC.Framebuffer(), 0.02)
	must(err)
	k.Ticker(100*sim.Millisecond, "slides", anim.Step)
	k.RunUntil(34 * sim.Second)
	fmt.Printf("after 30s of presenting: projector shows %d frames, projecting=%v\n",
		proj.FramesShown, proj.Projecting())

	// Bob tries to take over mid-presentation.
	must(bob.StartVNC(800, 600, rfb.EncRLE))
	bob.Discover(func(err error) { must(err) })
	k.RunUntil(36 * sim.Second)
	bob.GrabProjection(func(err error) {
		fmt.Printf("bob's hijack attempt: %v\n", err)
	})
	k.RunUntil(38 * sim.Second)

	// Alice uses the downloaded mobile proxy: an invalid command never
	// touches the network.
	alice.Command(projector.CmdPowerToggle, func(err error) {
		fmt.Printf("power toggle: err=%v, projector power=%v\n", err, proj.Power())
	})
	alice.Command(42, func(err error) {
		fmt.Printf("invalid command rejected locally: %v (round trips saved: %d)\n",
			err, alice.RoundTripsSaved)
	})
	k.RunUntil(40 * sim.Second)

	// Orderly teardown — the step the paper notes users forget.
	alice.ReleaseProjection(func(err error) { must(err) })
	alice.ReleaseControl(func(err error) { must(err) })
	k.RunUntil(42 * sim.Second)
	fmt.Printf("after release: projecting=%v, projection owner=%q\n",
		proj.Projecting(), proj.Projection.Owner())
	fmt.Printf("final app state: %v\n", proj.AppState())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
