// Smartprojector: the paper's challenge application end-to-end on live
// substrates — lookup service, lease-backed registration, discovery,
// session grab, VNC-style streaming, a hijack attempt, and mobile-proxy
// command validation.
//
// The scenario body lives in pkg/aroma/scenarios; this binary runs it
// from the registry.
//
//	go run ./examples/smartprojector
package main

import (
	"fmt"
	"os"

	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // register the stock scenarios
)

func main() {
	if _, err := scenario.Run("smartprojector", scenario.Config{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
