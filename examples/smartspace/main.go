// Smartspace: a room full of information appliances sharing one 2.4 GHz
// band and one lookup service — the paper's "smart spaces" setting (its
// adapter work was presented alongside NIST's AirJava smart-spaces
// effort). Demonstrates dynamic arrival/departure, lease self-cleaning
// after crashes, subscription events, and the per-device cost of band
// concentration.
//
//	go run ./examples/smartspace
package main

import (
	"fmt"

	"aroma/internal/discovery"
	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/netsim"
	"aroma/internal/radio"
	"aroma/internal/sim"
)

func main() {
	k := sim.New(7)
	e := env.New(k, geo.NewFloorPlan(geo.RectAt(0, 0, 40, 40)))
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := netsim.New(m)

	lkNode := nw.NewNode("lookup", m.AddStation(med.NewRadio("lookup", geo.Pt(20, 20), 6, 15)))
	lookup := discovery.NewLookup(lkNode)
	lookup.Start()

	// A control panel subscribes to every appliance event in the room.
	panelNode := nw.NewNode("panel", m.AddStation(med.NewRadio("panel", geo.Pt(20, 5), 6, 15)))
	panel := discovery.NewAgent(panelNode)
	panel.OnEvent = func(ev discovery.Event) {
		fmt.Printf("[%8s] panel: %s %q (%s)\n", k.Now(), ev.Kind, ev.Item.Name, ev.Item.Type)
	}
	k.RunUntil(sim.Second)
	panel.Subscribe(discovery.Template{}, 10*sim.Minute, func(id uint64, err error) {
		if err != nil {
			panic(err)
		}
	})
	k.RunUntil(2 * sim.Second)

	// Appliances power on over the first minute: lights, sensors, a
	// printer, a coffee maker...
	kinds := []string{"light", "thermometer", "printer", "coffee-maker", "door-lock", "hvac", "camera", "speaker"}
	registrations := make(map[string]*discovery.Registration)
	for i, kind := range kinds {
		i, kind := i, kind
		k.Schedule(sim.Time(i+1)*5*sim.Second, "poweron", func() {
			pos := geo.Pt(float64(5+4*i%30), float64(5+(i*9)%30))
			node := nw.NewNode(kind, m.AddStation(med.NewRadio(kind, pos, 6, 15)))
			agent := discovery.NewAgent(node)
			// Self-configuration: register as soon as the first lookup
			// announcement is heard — no addresses configured anywhere.
			agent.OnLookupFound = func(netsim.Addr) {
				agent.Register(discovery.Item{
					Name: fmt.Sprintf("%s-1", kind), Type: kind,
					Attrs: map[string]string{"room": "215"},
				}, 30*sim.Second, func(r *discovery.Registration, err error) {
					if err != nil {
						fmt.Printf("[%8s] %s registration failed: %v\n", k.Now(), kind, err)
						return
					}
					registrations[kind] = r
					r.AutoRenew(10 * sim.Second)
				})
			}
		})
	}
	k.RunUntil(sim.Minute)
	fmt.Printf("[%8s] registry holds %d services\n", k.Now(), lookup.Count())

	// A client queries by type.
	panel.Lookup(discovery.Template{Type: "printer"}, func(items []discovery.Item, err error) {
		if err == nil {
			fmt.Printf("[%8s] panel finds %d printer(s)\n", k.Now(), len(items))
		}
	})
	k.RunUntil(sim.Minute + 5*sim.Second)

	// The coffee maker crashes (stops renewing); the registry self-heals
	// within one lease period — no administrator.
	if r := registrations["coffee-maker"]; r != nil {
		r.StopAutoRenew()
		fmt.Printf("[%8s] coffee-maker crashes (renewals stop)\n", k.Now())
	}
	k.RunUntil(2 * sim.Minute)
	fmt.Printf("[%8s] registry holds %d services after self-cleaning\n", k.Now(), lookup.Count())

	// Band concentration: how busy did the shared channel get?
	fmt.Printf("medium totals: %d frames sent, %d delivered, %d lost to the shared band\n",
		med.Sent, med.Delivered, med.Lost)
}
