// Smartspace: a room full of information appliances sharing one 2.4 GHz
// band and one lookup service — dynamic arrival/departure, lease
// self-cleaning after crashes, subscription events, and the per-device
// cost of band concentration.
//
// The scenario body lives in pkg/aroma/scenarios; this binary runs it
// from the registry.
//
//	go run ./examples/smartspace
package main

import (
	"fmt"
	"os"

	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // register the stock scenarios
)

func main() {
	if _, err := scenario.Run("smartspace", scenario.Config{Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
