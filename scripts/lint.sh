#!/usr/bin/env bash
# Build aromalint and run the full analyzer suite over the module as a
# `go vet` tool. Any diagnostic fails the build: every rule violation
# must be fixed or carry a justified //aroma:<rule> directive.
#
# Usage: scripts/lint.sh [packages...]   (defaults to ./...)
#
# AROMALINT_BIN overrides where the tool binary is written (useful for
# keeping it on a cached path in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${AROMALINT_BIN:-$(mktemp -d)/aromalint}"
go build -o "$bin" ./cmd/aromalint
exec go vet -vettool="$bin" "${@:-./...}"
