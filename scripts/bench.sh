#!/usr/bin/env bash
# bench.sh — record the repo's performance trajectory.
#
# Runs the hot-path benchmarks (kernel event queue, dense/mobile radio
# medium, world-level sequential-vs-sharded execution) at a
# statistically useful count, plus every root figure/claim benchmark
# once, and folds the output into a JSON record via cmd/benchgate. The
# checked-in BENCH_PR8.json was produced by this script; CI re-runs the
# gated subset and compares against it (see .github/workflows/ci.yml
# "Benchmark regression gate").
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Environment:
#   COUNT      repetitions for the gated benchmarks (default 3; the
#              per-metric minimum is recorded, benchstat-style)
#   BENCHTIME  benchtime for the gated benchmarks (default 0.5s)
#   SKIP_ROOT  set to 1 to skip the slow root figure/claim benchmarks
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR8.json}
count=${COUNT:-3}
benchtime=${BENCHTIME:-0.5s}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== kernel event queue (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkKernel' -benchmem \
    -count "$count" -benchtime "$benchtime" ./internal/sim/ | tee -a "$tmp"

echo "== radio medium, dense + mobile (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkMediumDense' -benchmem \
    -count "$count" -benchtime "$benchtime" ./internal/radio/ | tee -a "$tmp"

echo "== checkpoint snapshot/restore, dense-500 (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkCheckpoint' -benchmem \
    -count "$count" -benchtime "$benchtime" ./pkg/aroma/checkpoint/ | tee -a "$tmp"

echo "== world fan-out, sequential vs sharded (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkWorldSharded' -benchmem \
    -count "$count" -benchtime "$benchtime" ./pkg/aroma/ | tee -a "$tmp"

echo "== telemetry hot path (count=$count, benchtime=$benchtime)"
go test -run '^$' -bench 'BenchmarkTelemetry' -benchmem \
    -count "$count" -benchtime "$benchtime" ./internal/telemetry/ | tee -a "$tmp"

if [[ "${SKIP_ROOT:-0}" != 1 ]]; then
    echo "== root figure/claim benchmarks (one shot each)"
    go test -run '^$' -bench '.' -benchmem -benchtime 1x . | tee -a "$tmp"
fi

go run ./cmd/benchgate -emit "$out" -in "$tmp" \
    -note "recorded by scripts/bench.sh; gated subset: BenchmarkKernel*, BenchmarkMediumDense*, BenchmarkCheckpoint*, BenchmarkWorldSharded*, BenchmarkTelemetry*"
