module aroma

go 1.24
