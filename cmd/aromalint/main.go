// Command aromalint runs the simulator's invariant analyzers: the
// determinism, hot-path, and checkpoint rules that World.Digest()
// regression suites can only catch after the fact are rejected here at
// analysis time. See internal/analysis for the framework and the
// individual analyzer packages for each rule.
//
// Two modes share one binary:
//
//	aromalint ./...                          # standalone, like staticcheck
//	go vet -vettool=$(pwd)/bin/aromalint ./... # under the go command
//
// Standalone mode loads packages itself via `go list -export`; vettool
// mode implements the go command's unitchecker protocol (-V=full,
// -flags, and a JSON .cfg file per compilation unit), so `go vet`
// drives and caches it like any other vet tool.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"aroma/internal/analysis"
	"aroma/internal/analysis/load"
	"aroma/internal/analysis/suite"
)

func main() {
	// The go command probes vettools before handing them work; these
	// must be handled before normal flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	enabled := analyzerFlags()
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aromalint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := selectAnalyzers(enabled, *only)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		// go vet handed us a compilation unit (possibly after
		// analyzer-selection flags).
		os.Exit(runUnit(patterns[0], analyzers))
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns, analyzers))
}

// analyzerFlags registers one bool flag per analyzer (-maprange=false
// disables it), matching how go vet exposes its checks.
func analyzerFlags() map[string]*bool {
	enabled := make(map[string]*bool)
	for _, a := range suite.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	return enabled
}

func selectAnalyzers(enabled map[string]*bool, only string) []*analysis.Analyzer {
	want := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range suite.Analyzers() {
		if len(want) > 0 && !want[a.Name] {
			continue
		}
		if on := enabled[a.Name]; on != nil && !*on {
			continue
		}
		out = append(out, a)
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runStandalone loads, analyzes, and prints diagnostics; the exit
// code is 1 if anything fired.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aromalint:", err)
		return 2
	}
	type finding struct {
		pos      string
		analyzer string
		msg      string
	}
	var findings []finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos:      p.Fset.Position(d.Pos).String(),
					analyzer: a.Name,
					msg:      d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "aromalint: %s: %s: %v\n", a.Name, p.ImportPath, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "aromalint: %d invariant violation(s)\n", len(findings))
		return 1
	}
	return 0
}
