package main

// The go command's vettool protocol, reimplemented on the standard
// library (the canonical implementation lives in x/tools'
// unitchecker, which cannot be fetched offline). The contract, from
// cmd/go/internal/{vet,work}:
//
//   - `tool -flags` prints a JSON array of {Name,Bool,Usage} so go vet
//     can accept the tool's flags on its own command line.
//   - `tool -V=full` prints "<name> version <version>..." used as the
//     build-cache key; it must change when the tool's behavior does,
//     so we hash the executable itself.
//   - `tool <unit>.cfg` analyzes one compilation unit described by a
//     JSON config: file list, import map, and compiler export-data
//     paths for every dependency. Diagnostics go to stderr as
//     "pos: message"; exit status 1 reports findings; the tool may
//     write an (empty, for us — the analyzers keep no cross-package
//     facts) "vetx" facts file at VetxOutput for go vet to cache.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"aroma/internal/analysis"
	"aroma/internal/analysis/load"
	"aroma/internal/analysis/suite"
)

// unitConfig mirrors the fields of cmd/go's vetConfig that we consume.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func printVersion() {
	// Hash the binary so the go command's vet cache invalidates when
	// the analyzers change.
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("aromalint version 1 sum %x\n", h.Sum(nil)[:12])
}

func printFlags() {
	type flagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []flagDesc
	for _, a := range suiteNames() {
		out = append(out, flagDesc{Name: a, Bool: true, Usage: "enable the " + a + " analyzer"})
	}
	json.NewEncoder(os.Stdout).Encode(out)
}

// runUnit analyzes one compilation unit per the vettool protocol and
// returns the process exit code.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aromalint:", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aromalint: decoding %s: %v\n", cfgPath, err)
		return 2
	}

	// Always leave a (possibly empty) facts file so go vet can cache
	// the unit; written before analysis so VetxOnly runs of dependency
	// packages stay cheap.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "aromalint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependencies are analyzed only for facts; we keep none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "aromalint:", err)
			return 2
		}
		files = append(files, f)
	}

	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if resolved, ok := cfg.ImportMap[importPath]; ok {
			importPath = resolved
		}
		return compImp.Import(importPath)
	})

	info := load.NewInfo()
	tconf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "aromalint:", err)
		return 2
	}

	exit := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), name, d.Message)
			exit = 1
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "aromalint: %s: %s: %v\n", name, cfg.ImportPath, err)
			return 2
		}
	}
	return exit
}

func suiteNames() []string {
	var names []string
	for _, a := range suite.Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
