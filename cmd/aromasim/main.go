// Command aromasim runs registered Aroma scenarios on the simulated
// substrates through the pkg/aroma facade and its scenario registry.
//
// The default scenario, "lab", is the full end-to-end run: the lookup
// service announces, the Smart Projector registers its services under
// leases, the presenter discovers it, grabs both sessions, streams an
// animated presentation, a hijack attempt is rejected, the presenter
// walks away and the forgotten session is reclaimed — then the whole run
// is analyzed with the LPC model.
//
// Usage:
//
//	aromasim [-scenario name] [-seed N] [-minutes M] [-verbose] [-metrics out.json]
//	aromasim -list                 # list registered scenarios
//	aromasim -all                  # batch-run every scenario, print a comparison table
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"aroma/internal/profiling"
	"aroma/internal/sim"
	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // populate the registry
	"aroma/pkg/aroma/sweep"
)

func main() {
	name := flag.String("scenario", "lab", "registered scenario to run (see -list)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = the scenario's classic seed)")
	minutes := flag.Int("minutes", 0, "simulated minutes to run (0 = the scenario's default)")
	verbose := flag.Bool("verbose", false, "print the full trace / extra detail")
	faults := flag.String("faults", "", "fault plan to arm (semicolon-separated specs, e.g. 'jam:at=5s,for=10s,loss=40;crash:at=20s,dev=2,for=30s'; empty or 'none' = no faults)")
	shards := flag.Int("shards", 0, "shard workers for the space-parallel execution mode (<2 = sequential; digests are identical either way)")
	metricsOut := flag.String("metrics", "", "enable telemetry and write the run's instrument snapshot (values + sim-time series) to this JSON file")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	all := flag.Bool("all", false, "run every registered scenario and print a comparison table")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on clean exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aromasim:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := scenario.Config{
		Seed:    *seed,
		Horizon: sim.Time(*minutes) * sim.Minute,
		Verbose: *verbose,
		Out:     os.Stdout,
		Shards:  *shards,
		Faults:  *faults,
		Metrics: *metricsOut != "",
	}

	if *all {
		runAll(ctx, cfg)
		return
	}

	// A scenario run is not preemptible, so run it aside and on SIGINT/
	// SIGTERM exit gracefully — flushing any in-flight profiles — rather
	// than dying with a truncated, unreadable profile.
	done := make(chan error, 1)
	go func() {
		res, err := scenario.Run(*name, cfg)
		if err == nil && *metricsOut != "" {
			err = writeMetrics(*metricsOut, res)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "aromasim: interrupted")
		stopProfiles()
		os.Exit(130)
	}
}

// writeMetrics writes the run's telemetry snapshot as indented JSON.
// Func-registered scenarios have no world to instrument; asking for
// their metrics is an error rather than a silently empty file.
func writeMetrics(path string, res *scenario.Result) error {
	if res.Telemetry == nil {
		return fmt.Errorf("aromasim: scenario %s produced no telemetry (only world-registered scenarios are instrumented)", res.Name)
	}
	data, err := json.MarshalIndent(res.Telemetry, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runAll batch-runs every registered scenario concurrently through the
// sweep engine — one grid cell per scenario, each run in an isolated
// world with captured output — and prints one comparison row per
// scenario in registry order. With -verbose each scenario's captured
// narration prints as it completes (never interleaved).
func runAll(ctx context.Context, cfg scenario.Config) {
	design := sweep.Design{
		Scenario: "batch",
		Func: func(c scenario.Config) (*scenario.Result, error) {
			return scenario.Run(c.ParamOr("scenario", ""), c)
		},
		Axes: []sweep.Axis{sweep.Strings("scenario", scenario.Names()...)},
		// Seed 0 keeps each scenario's classic seed, exactly like a
		// plain sequential -all did before the engine.
		Seeds:   []int64{cfg.Seed},
		Horizon: cfg.Horizon,
		Verbose: cfg.Verbose,
		Shards:  cfg.Shards,
	}
	if cfg.Faults != "" {
		design.Faults = []string{cfg.Faults}
	}
	var opts []sweep.Option
	if cfg.Verbose {
		opts = append(opts, sweep.WithProgress(func(row sweep.Row) {
			fmt.Printf("=== %s ===\n%s", row.Params["scenario"], row.Output)
		}))
	}
	s, err := sweep.New(design, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-16s %10s %10s %9s %7s %11s\n",
		"scenario", "sim-time", "events", "findings", "issues", "violations")
	for _, row := range rep.Rows {
		name := row.Params["scenario"]
		if row.Err != "" {
			fmt.Printf("%-16s ERROR: %s\n", name, row.Err)
			continue
		}
		fmt.Printf("%-16s %10s %10d %9d %7d %11d\n",
			name, row.SimTime, row.Steps,
			row.Findings, row.Issues, row.Violations)
	}
	if n := rep.FailedCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d scenario(s) failed\n", n)
		os.Exit(1)
	}
}
