// Command aromasim runs registered Aroma scenarios on the simulated
// substrates through the pkg/aroma facade and its scenario registry.
//
// The default scenario, "lab", is the full end-to-end run: the lookup
// service announces, the Smart Projector registers its services under
// leases, the presenter discovers it, grabs both sessions, streams an
// animated presentation, a hijack attempt is rejected, the presenter
// walks away and the forgotten session is reclaimed — then the whole run
// is analyzed with the LPC model.
//
// Usage:
//
//	aromasim [-scenario name] [-seed N] [-minutes M] [-verbose]
//	aromasim -list                 # list registered scenarios
//	aromasim -all                  # batch-run every scenario, print a comparison table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aroma/internal/sim"
	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // populate the registry
)

func main() {
	name := flag.String("scenario", "lab", "registered scenario to run (see -list)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = the scenario's classic seed)")
	minutes := flag.Int("minutes", 0, "simulated minutes to run (0 = the scenario's default)")
	verbose := flag.Bool("verbose", false, "print the full trace / extra detail")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	all := flag.Bool("all", false, "run every registered scenario and print a comparison table")
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}

	cfg := scenario.Config{
		Seed:    *seed,
		Horizon: sim.Time(*minutes) * sim.Minute,
		Verbose: *verbose,
		Out:     os.Stdout,
	}

	if *all {
		runAll(cfg)
		return
	}

	if _, err := scenario.Run(*name, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runAll batch-runs every registered scenario (narration suppressed
// unless -verbose) and prints one comparison row per scenario.
func runAll(cfg scenario.Config) {
	type row struct {
		res *scenario.Result
		err error
	}
	rows := make(map[string]row)
	for _, s := range scenario.All() {
		c := cfg
		if !cfg.Verbose {
			c.Out = io.Discard
		} else {
			fmt.Printf("=== %s ===\n", s.Name)
		}
		res, err := scenario.Run(s.Name, c)
		rows[s.Name] = row{res: res, err: err}
	}

	fmt.Printf("%-16s %10s %10s %9s %7s %11s\n",
		"scenario", "sim-time", "events", "findings", "issues", "violations")
	failed := 0
	for _, s := range scenario.All() {
		r := rows[s.Name]
		if r.err != nil {
			failed++
			fmt.Printf("%-16s ERROR: %v\n", s.Name, r.err)
			continue
		}
		fmt.Printf("%-16s %10s %10d %9d %7d %11d\n",
			s.Name, r.res.SimTime, r.res.Steps,
			r.res.Findings(), r.res.Issues(), r.res.Violations())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d scenario(s) failed\n", failed)
		os.Exit(1)
	}
}
