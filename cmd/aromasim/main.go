// Command aromasim runs the full Aroma lab scenario end-to-end on the
// simulated substrates: the lookup service announces, the Smart Projector
// registers its two services under leases, the presenter's laptop
// discovers the projector, grabs both sessions, streams an animated
// presentation over the VNC-style protocol, a second user's hijack
// attempt is rejected, the presenter walks away and the forgotten session
// is reclaimed — and finally the whole run is analyzed with the LPC model
// (trace events folded in).
//
// Usage:
//
//	aromasim [-seed N] [-minutes M] [-verbose]
package main

import (
	"flag"
	"fmt"

	"aroma/internal/core"
	"aroma/internal/device"
	"aroma/internal/discovery"
	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/mac"
	"aroma/internal/netsim"
	"aroma/internal/projector"
	"aroma/internal/radio"
	"aroma/internal/rfb"
	"aroma/internal/sim"
	"aroma/internal/trace"
	"aroma/internal/user"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	minutes := flag.Int("minutes", 6, "simulated minutes to run")
	verbose := flag.Bool("verbose", false, "print the full trace")
	flag.Parse()

	k := sim.New(*seed)
	plan := geo.NewFloorPlan(geo.RectAt(0, 0, 30, 20))
	e := env.New(k, plan)
	med := radio.NewMedium(k, e)
	m := mac.New(med, mac.Config{})
	nw := netsim.New(m)
	log := trace.NewForKernel(k)

	say := func(format string, args ...any) {
		fmt.Printf("[%8s] %s\n", k.Now(), fmt.Sprintf(format, args...))
	}

	// Infrastructure.
	lkNode := nw.NewNode("lookup", m.AddStation(med.NewRadio("lookup", geo.Pt(15, 18), 6, 15)))
	lookup := discovery.NewLookup(lkNode)
	lookup.Start()
	say("lookup service online at addr %d, announcing", lkNode.Addr())

	projNode := nw.NewNode("projector", m.AddStation(med.NewRadio("projector", geo.Pt(25, 10), 6, 15)))
	cfg := projector.DefaultConfig()
	cfg.IdleLimit = 90 * sim.Second
	proj := projector.New(projNode, discovery.NewAgent(projNode), log, cfg)

	aliceNode := nw.NewNode("alice-laptop", m.AddStation(med.NewRadio("alice", geo.Pt(5, 10), 6, 15)))
	alice := projector.NewPresenter("alice", aliceNode, discovery.NewAgent(aliceNode))
	bobNode := nw.NewNode("bob-laptop", m.AddStation(med.NewRadio("bob", geo.Pt(8, 6), 6, 15)))
	bob := projector.NewPresenter("bob", bobNode, discovery.NewAgent(bobNode))

	// Script the scenario.
	k.Schedule(sim.Second, "register", func() {
		proj.Register(func(err error) {
			if err != nil {
				say("projector registration FAILED: %v", err)
				return
			}
			say("projector registered display+control services (leased, auto-renewed)")
		})
	})
	k.Schedule(5*sim.Second, "alice-setup", func() {
		if err := alice.StartVNC(1024, 768, rfb.EncRLE); err != nil {
			say("alice VNC failed: %v", err)
			return
		}
		say("alice started her VNC server (1024x768)")
		alice.Discover(func(err error) {
			if err != nil {
				say("alice discovery failed: %v", err)
				return
			}
			addr, _ := alice.ProjectorAddr()
			say("alice discovered the smart projector at addr %d (proxy downloaded: %v)", addr, alice.HasProxy())
			alice.GrabProjection(func(err error) {
				if err != nil {
					say("alice grab projection failed: %v", err)
					return
				}
				say("alice holds the projection session; streaming begins")
			})
			alice.GrabControl(func(err error) {
				if err == nil {
					say("alice holds the control session")
				}
			})
		})
	})

	// Alice presents: animation on her screen for two minutes.
	var anim *rfb.Animator
	k.Schedule(10*sim.Second, "present", func() {
		if alice.VNC == nil {
			return
		}
		anim, _ = rfb.NewAnimator(alice.VNC.Framebuffer(), 0.02)
		stopAnim := k.Ticker(100*sim.Millisecond, "slides", anim.Step)
		k.Schedule(2*sim.Minute, "stop-presenting", func() {
			stopAnim()
			say("alice finishes presenting and WALKS AWAY without releasing (the paper's forgotten session)")
		})
	})

	// Bob tries to hijack mid-presentation.
	k.Schedule(sim.Minute, "bob-hijack", func() {
		if err := bob.StartVNC(800, 600, rfb.EncRLE); err != nil {
			return
		}
		bob.Discover(func(err error) {
			if err != nil {
				return
			}
			bob.GrabProjection(func(err error) {
				if err != nil {
					say("bob's grab while alice presents was REJECTED: %v", err)
				} else {
					say("bob HIJACKED the projector (bug!)")
				}
			})
		})
	})

	// Bob waits politely for the reclaimed session.
	k.Schedule(2*sim.Minute+20*sim.Second, "bob-waits", func() {
		proj.Projection.WaitFor("bob", func() {
			say("idle timeout reclaimed alice's session; bob granted projection without any administrator")
		})
	})

	// Brightness fiddling through the control proxy.
	k.Schedule(90*sim.Second, "brightness", func() {
		alice.Command(projector.CmdPowerToggle, func(err error) {
			if err == nil {
				say("alice powered the projector on via remote control")
			}
		})
		alice.Command(99, func(err error) {
			say("alice's invalid command rejected locally by the mobile proxy: %v", err)
		})
	})

	horizon := sim.Time(*minutes) * sim.Minute
	k.RunUntil(horizon)

	say("simulation complete: projector showed %d frames, served %d commands", proj.FramesShown, proj.CommandsServed)
	say("lookup registry: %d live registrations; medium: %d frames sent, %d lost",
		lookup.Count(), med.Sent, med.Lost)

	if *verbose {
		fmt.Println("\nFull trace:")
		fmt.Print(log.Render(trace.Info))
	}

	// Fold the run into an LPC analysis.
	sys := &core.System{Name: "aroma-lab-run", Env: e, Medium: med, Log: log}
	sys.AddDevice(&core.DeviceEntity{
		Name: "projector", Pos: geo.Pt(25, 10), Spec: device.AromaAdapterSpec(),
		AppState: proj.AppState(),
		Purpose: core.DesignPurpose{
			Description:  "research prototype",
			Capabilities: map[string]float64{"remote-projection": 0.8, "remote-control": 0.8, "zero-config": 0.2},
			AssumedSkill: 0.9,
		},
	})
	aliceUser := user.New(k, "alice", user.ResearcherFaculties())
	aliceUser.Pos = geo.Pt(5, 10.5)
	// Alice still believes she is projecting — she walked away.
	aliceUser.Mental.Believe("projecting", "true")
	aliceUser.Mental.Believe("projection.owner", "alice")
	sys.AddUser(&core.UserEntity{U: aliceUser, Operates: []string{"projector"}})

	fmt.Println()
	fmt.Println(core.Analyze(sys, core.DefaultConfig()).Render())
}
