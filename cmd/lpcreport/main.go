// Command lpcreport regenerates the paper's five figures from the model
// inventory and performs the paper's layer-by-layer Smart Projector
// analysis with the LPC analyzer — for the paper's two audiences
// (researchers vs casual users), optionally with the user column
// disabled to show the OSI-style view the paper argues against.
//
// Usage:
//
//	lpcreport [-audience researcher|casual] [-user-column=true] [-figures]
//	lpcreport -file system.json            # analyze a JSON system description
package main

import (
	"flag"
	"fmt"
	"os"

	"aroma/internal/core"
	"aroma/internal/device"
	"aroma/internal/env"
	"aroma/internal/geo"
	"aroma/internal/radio"
	"aroma/internal/sim"
	"aroma/internal/trace"
	"aroma/internal/user"
)

func buildSystem(k *sim.Kernel, fac user.Faculties) *core.System {
	plan := geo.NewFloorPlan(geo.RectAt(0, 0, 30, 20))
	e := env.New(k, plan)
	med := radio.NewMedium(k, e)
	sys := &core.System{Name: "smart-projector", Env: e, Medium: med}

	sys.AddDevice(&core.DeviceEntity{
		Name: "laptop", Pos: geo.Pt(5, 10), Spec: device.LaptopSpec(),
		Radio:           med.NewRadio("laptop", geo.Pt(5, 10), 6, 15),
		AppState:        map[string]string{"vnc.running": "true"},
		OperatingRangeM: 0.8,
		Purpose: core.DesignPurpose{
			Description:  "presentation laptop",
			Capabilities: map[string]float64{"present-slides": 0.9},
			AssumedSkill: 0.3,
		},
	})
	sys.AddDevice(&core.DeviceEntity{
		Name: "projector", Pos: geo.Pt(25, 10), Spec: device.AromaAdapterSpec(),
		Radio:    med.NewRadio("projector", geo.Pt(25, 10), 6, 15),
		AppState: map[string]string{"projecting": "true", "projection.owner": "alice"},
		Purpose: core.DesignPurpose{
			Description:  "research vehicle to measure service discovery",
			Capabilities: map[string]float64{"remote-projection": 0.8, "remote-control": 0.8, "zero-config": 0.2},
			AssumedSkill: 0.9,
		},
	})
	sys.AddDevice(&core.DeviceEntity{
		Name: "lookup", Pos: geo.Pt(15, 18), Spec: device.AromaAdapterSpec(),
		Radio: med.NewRadio("lookup", geo.Pt(15, 18), 6, 15),
		Purpose: core.DesignPurpose{
			Description:  "Jini lookup service",
			Capabilities: map[string]float64{"service-discovery": 0.9},
			AssumedSkill: 0.9,
		},
	})
	sys.Links = []core.Link{{A: "laptop", B: "projector"}, {A: "laptop", B: "lookup"}, {A: "projector", B: "lookup"}}

	alice := user.New(k, "alice", fac)
	alice.Pos = geo.Pt(5, 10.5)
	alice.Goals = []user.Goal{
		{Name: "make the presentation", Needs: []string{"remote-projection"}, Importance: 3},
		{Name: "zero setup", Needs: []string{"zero-config"}, Importance: 2},
	}
	alice.Mental.Believe("projecting", "true")
	alice.Mental.Believe("projection.owner", "alice")
	sys.AddUser(&core.UserEntity{U: alice, Operates: []string{"laptop", "projector"}})
	return sys
}

func main() {
	audience := flag.String("audience", "researcher", "user audience: researcher or casual")
	userColumn := flag.Bool("user-column", true, "include the user column (false = OSI-style device-only view)")
	figures := flag.Bool("figures", true, "render the model figures")
	file := flag.String("file", "", "analyze a JSON system description instead of the built-in Smart Projector")
	flag.Parse()

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k := sim.New(1)
		sys, err := core.LoadSystem(k, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := core.DefaultConfig()
		cfg.UserColumn = *userColumn
		fmt.Println(core.Analyze(sys, cfg).Render())
		return
	}

	var fac user.Faculties
	switch *audience {
	case "researcher":
		fac = user.ResearcherFaculties()
	case "casual":
		fac = user.CasualFaculties()
	default:
		fmt.Fprintf(os.Stderr, "unknown audience %q\n", *audience)
		os.Exit(2)
	}

	if *figures {
		fmt.Println(core.RenderFigure1())
		for _, l := range trace.Layers() {
			fmt.Println(core.RenderFigureForLayer(l))
		}
	}

	k := sim.New(1)
	sys := buildSystem(k, fac)
	cfg := core.DefaultConfig()
	cfg.UserColumn = *userColumn
	report := core.Analyze(sys, cfg)
	fmt.Println(report.Render())
}
