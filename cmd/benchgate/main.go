// Command benchgate records and gates benchmark trajectories.
//
// It has two modes:
//
//	benchgate -emit BENCH.json [-in bench.txt] [-note "..."]
//	    Parse `go test -bench -benchmem` output (a file or stdin) into a
//	    JSON benchmark record. Repeated runs of the same benchmark
//	    (-count > 1) are folded to their per-metric minimum, the
//	    benchstat-style noise floor.
//
//	benchgate -baseline BENCH.json -current NEW.json \
//	          [-max-ns-regress-pct 15] [-max-allocs-regress 8] \
//	          [-max-allocs-regress-pct 5] [-require Name1,Name2]
//	    Compare a fresh record against a checked-in baseline. The gate
//	    fails (exit 1) when a benchmark present in both regresses by
//	    more than the allowed ns/op percentage, or by more allocs/op
//	    than max(absolute floor, percentage) allows. allocs/op is
//	    machine-independent, so its gate is meaningful across runners;
//	    ns/op comparisons assume a comparable machine (see README
//	    "Performance").
//
// The gate intentionally compares only the intersection of the two
// records, so a baseline may carry slow trajectory-only benchmarks that
// CI does not re-run; -require lists names that must be present in the
// current record, catching silent renames or removals of the gated set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded metrics.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Record is the checked-in benchmark trajectory file format.
type Record struct {
	Note       string   `json:"note,omitempty"`
	Go         string   `json:"go,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	emit := flag.String("emit", "", "write a parsed benchmark record to this JSON file")
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	note := flag.String("note", "", "free-form note stored in the emitted record")
	baseline := flag.String("baseline", "", "checked-in baseline record to gate against")
	current := flag.String("current", "", "freshly emitted record to check")
	maxNsPct := flag.Float64("max-ns-regress-pct", 15, "fail when ns/op regresses by more than this percentage")
	maxAllocs := flag.Float64("max-allocs-regress", 8, "absolute allocs/op jitter floor: regressions at or below this many allocations never fail")
	maxAllocsPct := flag.Float64("max-allocs-regress-pct", 5, "fail when allocs/op regresses by more than this percentage (above the absolute floor)")
	require := flag.String("require", "", "comma-separated benchmark names that must be present in -current")
	flag.Parse()

	switch {
	case *emit != "":
		if err := runEmit(*emit, *in, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
	case *baseline != "" && *current != "":
		ok, err := runGate(*baseline, *current, gateLimits{nsPct: *maxNsPct, allocsAbs: *maxAllocs, allocsPct: *maxAllocsPct}, *require)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -emit OUT.json, or -baseline BASE.json -current NEW.json")
		os.Exit(2)
	}
}

func runEmit(out, in, note string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rec, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	rec.Note = note
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchgate: recorded %d benchmarks to %s\n", len(rec.Benchmarks), out)
	return nil
}

// Parse reads `go test -bench` output and folds repeated runs of one
// benchmark to the minimum of each metric.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		prev, seen := byName[res.Name]
		if !seen {
			byName[res.Name] = &res
			order = append(order, res.Name)
			continue
		}
		prev.Runs += res.Runs
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		if res.BytesPerOp < prev.BytesPerOp {
			prev.BytesPerOp = res.BytesPerOp
		}
		if res.AllocsPerOp < prev.AllocsPerOp {
			prev.AllocsPerOp = res.AllocsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		rec.Benchmarks = append(rec.Benchmarks, *byName[name])
	}
	return rec, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   324   6614089 ns/op   81664 B/op   170 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so records are comparable across
// machines with different core counts.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return Result{}, false // not an iteration count: not a result line
	}
	res := Result{Name: name, Runs: 1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if res.NsPerOp == 0 {
		return Result{}, false
	}
	return res, true
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// gateLimits bounds the tolerated regression per benchmark. The
// allocation limit is max(allocsAbs, base*allocsPct/100): the absolute
// floor absorbs amortized pool/cache-growth jitter (a handful of
// allocations whose attribution shifts with the iteration count), while
// any systematic reintroduction of a per-frame or per-event allocation
// costs at least the burst size (64/op) and always trips the gate.
type gateLimits struct {
	nsPct     float64
	allocsAbs float64
	allocsPct float64
}

func (g gateLimits) allocsAllowed(base float64) float64 {
	if pct := base * g.allocsPct / 100; pct > g.allocsAbs {
		return pct
	}
	return g.allocsAbs
}

func runGate(basePath, curPath string, limits gateLimits, require string) (bool, error) {
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(curPath)
	if err != nil {
		return false, err
	}
	curBy := map[string]Result{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	ok := true
	if require != "" {
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, present := curBy[name]; !present {
				fmt.Printf("FAIL %-40s required benchmark missing from current run\n", name)
				ok = false
			}
		}
	}
	names := make([]string, 0, len(base.Benchmarks))
	baseBy := map[string]Result{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)
	compared := 0
	for _, name := range names {
		b, c := baseBy[name], curBy[name]
		if c.Name == "" {
			continue // trajectory-only entry; not re-run this time
		}
		compared++
		status := "ok  "
		nsDelta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		if c.NsPerOp > b.NsPerOp*(1+limits.nsPct/100) {
			status = "FAIL"
			ok = false
		}
		allocsDelta := c.AllocsPerOp - b.AllocsPerOp
		if allocsDelta > limits.allocsAllowed(b.AllocsPerOp) {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%s %-40s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %6.0f -> %6.0f (%+.0f)\n",
			status, name, b.NsPerOp, c.NsPerOp, nsDelta, b.AllocsPerOp, c.AllocsPerOp, allocsDelta)
	}
	if compared == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", basePath, curPath)
	}
	verdict := "within limits"
	if !ok {
		verdict = "regression gate FAILED"
	}
	fmt.Printf("benchgate: %d compared, %s (limits: ns/op +%.0f%%, allocs/op +max(%.0f, %.0f%%))\n",
		compared, verdict, limits.nsPct, limits.allocsAbs, limits.allocsPct)
	return ok, nil
}
