// Command aromasweep runs experiment campaigns: a registered scenario
// swept over a parameter grid × seed replications, fanned out across
// all cores by the pkg/aroma/sweep engine, aggregated into per-cell
// statistics (mean ±CI95), and optionally written out as artifacts
// (per-run JSONL, per-cell CSV, rendered table).
//
// Usage:
//
//	aromasweep -scenario mobiledense -reps 32 -set radios=100,200,400 [-workers 0] [-out dir/]
//	aromasweep -scenario densitysweep -seeds 3,5,9 -set side=300,600
//	aromasweep -list                  # list registered scenarios
//
// Every run is isolated and bit-reproducible: rerunning the same
// campaign reproduces every per-run digest, at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"aroma/internal/profiling"
	"aroma/internal/sim"
	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // populate the registry
	"aroma/pkg/aroma/sweep"
)

// axisFlags collects repeated -set name=v1,v2,... flags.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%v", []sweep.Axis(*a)) }

func (a *axisFlags) Set(s string) error {
	ax, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

// stringsFlag collects a repeated string flag (-faults plan per arm).
type stringsFlag []string

func (f *stringsFlag) String() string { return strings.Join(*f, " | ") }

func (f *stringsFlag) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func main() {
	var axes axisFlags
	var faults stringsFlag
	name := flag.String("scenario", "", "registered scenario to sweep (see -list)")
	reps := flag.Int("reps", 1, "replications per grid cell (seeds seed, seed+1, ...)")
	seed := flag.Int64("seed", 1, "base seed for derived replication seeds")
	seeds := flag.String("seeds", "", "explicit comma-separated seed list (overrides -reps/-seed; 0 = the scenario's classic seed)")
	minutes := flag.Int("minutes", 0, "simulated minutes per run (0 = the scenario's default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = all cores)")
	shards := flag.Int("shards", 0, "shard workers per run for the space-parallel execution mode (<2 = sequential; digests and cell statistics are identical either way — pair with -workers 1 to avoid oversubscription)")
	out := flag.String("out", "", "directory for artifacts: runs.jsonl, cells.csv, report.txt (and metrics.jsonl with -metrics)")
	telemetry := flag.Bool("metrics", false, "enable per-run telemetry; snapshots are written to metrics.jsonl next to runs.jsonl")
	failFast := flag.Bool("failfast", false, "stop the sweep at the first failed run")
	retryFailed := flag.Bool("retry-failed", false, "re-run each failed replication once with the identical config (second attempt recorded in runs.jsonl)")
	verbose := flag.Bool("verbose", false, "print every run's captured output as it completes")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole campaign to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on clean exit")
	flag.Var(&axes, "set", "parameter axis as name=v1,v2,... (repeatable; cross-product spans the grid)")
	flag.Var(&faults, "faults", "fault-plan arm to sweep, e.g. 'jam:at=5s,for=10s,loss=40' or 'none' (repeatable; each arm reruns the whole grid with identical seeds)")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aromasweep:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "aromasweep: -scenario is required (use -list)")
		os.Exit(2)
	}

	design := sweep.Design{
		Scenario:    *name,
		Axes:        axes,
		Reps:        *reps,
		BaseSeed:    *seed,
		Horizon:     sim.Time(*minutes) * sim.Minute,
		Verbose:     *verbose,
		Shards:      *shards,
		Telemetry:   *telemetry,
		Faults:      faults,
		RetryFailed: *retryFailed,
	}
	if *seeds != "" {
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aromasweep: bad -seeds entry %q: %v\n", part, err)
				os.Exit(2)
			}
			design.Seeds = append(design.Seeds, v)
		}
	}

	opts := []sweep.Option{sweep.WithWorkers(*workers)}
	if *failFast {
		opts = append(opts, sweep.WithFailFast())
	}
	if !*quiet {
		opts = append(opts, sweep.WithProgress(func(row sweep.Row) {
			status := "ok"
			if row.Err != "" {
				status = "FAIL: " + row.Err
			}
			cell := row.Label
			if cell == "" {
				cell = "(single cell)"
			}
			fmt.Printf("%-32s seed=%-6d %8s  digest=%-16s %s\n",
				cell, row.Seed, row.Wall().Round(time.Millisecond), row.Digest, status)
			if *verbose && row.Output != "" {
				fmt.Print(indent(row.Output))
			}
		}))
	}

	s, err := sweep.New(design, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aromasweep:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if !*quiet {
		fmt.Printf("sweep %s: %d cells × %d seeds = %d runs on %d workers\n",
			design.Name(), s.CellCount(), s.SeedCount(), s.Tasks(), s.Workers())
	}
	rep, runErr := s.Run(ctx)

	fmt.Println()
	fmt.Print(rep.Table().Render())
	if *out != "" {
		if err := rep.WriteArtifacts(*out); err != nil {
			fmt.Fprintln(os.Stderr, "aromasweep:", err)
			os.Exit(1)
		}
		files := "runs.jsonl, cells.csv, report.txt"
		if rep.HasTelemetry() {
			files = "runs.jsonl, metrics.jsonl, cells.csv, report.txt"
		}
		fmt.Printf("artifacts: %s/{%s}\n", strings.TrimRight(*out, "/"), files)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "aromasweep:", runErr)
		os.Exit(1)
	}
	if n := rep.FailedCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "aromasweep: %d run(s) failed\n", n)
		os.Exit(1)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
