// Command experiments runs the paper-reproduction experiment suite and
// prints every regenerated table and figure-shaped series (the rows
// indexed in EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run all|F1|...|C8] [-seed N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"aroma/internal/experiments"
)

func main() {
	runID := flag.String("run", "all", "experiment id to run (F1..F5, C1..C8) or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var toRun []experiments.Experiment
	if *runID == "all" {
		toRun = experiments.All()
	} else {
		e := experiments.ByID(*runID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *runID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{*e}
	}

	failures := 0
	for _, e := range toRun {
		res := e.Run(*seed)
		fmt.Print(res.Render())
		if !res.ShapeOK {
			failures++
		}
	}
	fmt.Printf("\n%d/%d experiments match the paper's qualitative shape\n", len(toRun)-failures, len(toRun))
	if failures > 0 {
		os.Exit(1)
	}
}
