// Command aromad is the Aroma simulation daemon: a resident process
// hosting many concurrent simulated worlds behind a JSON HTTP API.
//
// Each world is a registered scenario built to time zero and then
// driven over HTTP — step by step, for a duration, or to its horizon —
// with live trace streaming over SSE. Worlds can be checkpointed into
// the daemon's snapshot store, and snapshots restored or forked
// (restored + reseeded) into new worlds; a downloaded snapshot restores
// in-process to the bit-identical world. See internal/daemon for the
// API table and pkg/aroma/client for the Go client.
//
// Usage:
//
//	aromad [-addr host:port] [-shards N] [-supervise N]
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: in-flight requests
// get a grace period, every hosted world's command loop stops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aroma/internal/daemon"
	"aroma/pkg/aroma"
	"aroma/pkg/aroma/scenario"
	_ "aroma/pkg/aroma/scenarios" // populate the scenario registry
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	shards := flag.Int("shards", 0, "default shard workers for hosted worlds (<2 = sequential; per-world requests override; digests are identical either way)")
	supervise := flag.Int("supervise", 0, "self-healing restart budget per world: resurrect a failed world from its most recent snapshot up to N times (0 = failures are terminal)")
	chaos := flag.Bool("chaos", false, "register the chaosbomb drill scenario (panics out of a kernel event at t=10s) for exercising panic isolation and supervised recovery")
	flag.Parse()

	if *chaos {
		registerChaosBomb()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := daemon.New(daemon.WithDefaultShards(*shards), daemon.WithSupervisor(*supervise))
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "aromad: listening on http://%s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "aromad:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	shutdown(hs, srv)
}

// registerChaosBomb adds the chaos drill to this process's scenario
// registry: a world that panics out of a kernel event mid-run. Gated
// behind -chaos so ordinary daemons never host it by accident; CI's
// chaos smoke drives the panic-isolation and supervisor-resurrection
// paths through it over plain HTTP.
func registerChaosBomb() {
	scenario.RegisterWorld("chaosbomb", "chaos drill: panics out of a kernel event at t=10s",
		func(cfg scenario.Config) (*scenario.Built, error) {
			w := aroma.NewWorld(aroma.WithName("chaos"), aroma.WithSeed(cfg.SeedOr(1)))
			w.AddDevice("dev", aroma.Pt(1, 1), aroma.WithSpec(aroma.AdapterSpec()))
			w.Schedule(10*aroma.Second, "chaos.detonate", func() {
				panic("chaosbomb: injected drill failure")
			})
			return &scenario.Built{World: w, Horizon: cfg.HorizonOr(30 * aroma.Second)}, nil
		})
}

func shutdown(hs *http.Server, srv *daemon.Server) {
	fmt.Fprintln(os.Stderr, "aromad: shutting down")
	// Close the worlds first: that ends every SSE stream (they select on
	// the world's quit channel), so Shutdown is not held open by
	// long-lived streaming connections.
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "aromad: shutdown:", err)
	}
}
